"""EXP-L: the budget premium of reservation-hosted shared pools.

Hosting FEDCONS's low-density pool inside periodic reservations (so the
platform can be shared with other software -- the hierarchical/-reservation
direction of follow-up work) costs supply-uncertainty overhead: the reserved
rate must exceed the bucket's raw utilization to cover the worst-case
``2 * (Pi - Theta)`` starvation gap.  This experiment sweeps the server
period (as a fraction of the bucket's smallest deadline) and reports the
mean premium and the fraction of buckets that become un-hostable -- the
quantitative trade a system integrator consults when choosing server
granularity.
"""

from __future__ import annotations

import numpy as np

from repro.core.fedcons import fedcons
from repro.experiments.reporting import Table
from repro.extensions.reservations import plan_reservations
from repro.generation.tasksets import SystemConfig, generate_system
from repro.parallel.seeds import sample_rng

__all__ = ["run"]

_PERIOD_FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.5)


def run(samples: int = 40, seed: int = 0, quick: bool = False) -> list[Table]:
    """Reservation budget premium across server-period fractions."""
    if quick:
        samples = min(samples, 8)
    m = 8
    cfg = SystemConfig(
        tasks=2 * m,
        processors=m,
        normalized_utilization=0.45,
        max_vertices=12 if quick else 20,
    )
    rng = sample_rng(seed, "EXP-L", 0, 0)
    deployments = []
    while len(deployments) < samples:
        system = generate_system(cfg, rng)
        result = fedcons(system, m)
        if result.success and result.partition and any(
            bucket for bucket in result.partition.assignment
        ):
            deployments.append(result)

    table = Table(
        title=f"EXP-L: reservation budget premium vs server period "
        f"(m={m}, {samples} deployments)",
        columns=[
            "server period / min bucket deadline",
            "plans that fit",
            "mean reserved rate",
            "mean raw utilization",
            "mean premium",
        ],
    )
    for fraction in _PERIOD_FRACTIONS:
        fitted = 0
        rates: list[float] = []
        utils: list[float] = []
        premiums: list[float] = []
        for deployment in deployments:
            plan = plan_reservations(
                deployment, period_fraction=fraction, tolerance=1e-3
            )
            if not plan.success:
                continue
            fitted += 1
            rates.append(plan.total_rate)
            utils.append(plan.total_utilization)
            premiums.append(plan.total_premium)
        table.add_row(
            fraction,
            fitted / samples,
            float(np.mean(rates)) if rates else float("nan"),
            float(np.mean(utils)) if utils else float("nan"),
            float(np.mean(premiums)) if premiums else float("nan"),
        )
    table.notes.append(
        "shorter server periods shrink the worst-case starvation gap and "
        "hence the premium, at the cost of more frequent server switches on "
        "the host.  'plans that fit' is an invariant check (always 1.0: a "
        "full-budget reservation is a dedicated processor, which hosted the "
        "bucket by construction) -- long periods do not break hosting, they "
        "inflate the premium toward a fully dedicated processor."
    )
    return [table]
