"""EXP-S: admission-service soak -- sustained throughput + failover drills.

The service layer (:mod:`repro.service`) claims two things the library
alone cannot: that coalescing concurrent arrivals into group-committed
batches sustains hundreds of admissions per second *with durability on*,
and that a warm standby bounds failover to one verified recovery pass plus
the in-flight replication window.  This experiment measures both against a
real primary process (spawned ``fedcons-serve serve``, SIGKILLed where the
drill demands it):

* **Open-loop throughput** -- Poisson arrivals at a fixed offered rate are
  pipelined over several concurrency levels; each client connection sends
  on schedule without waiting for responses, so server-side queueing is
  visible instead of hidden by client back-pressure.  Reported: sustained
  admissions/sec (completed decisions over wall clock) and client-observed
  request latency quantiles.

* **Failover drills** -- repeated kill-primary drills
  (:func:`repro.service.drill.run_drill`): SIGKILL mid-load, promote the
  standby with ``recover(verify=True)``, cross-check the promoted state
  against the primary's journal prefix, and collect the failover-time and
  staleness distributions.

``benchmarks/test_bench_service.py`` pins the acceptance gates (>= 500
admissions/sec sustained, >= 20x the per-event full-re-analysis baseline,
failover under 2x checkpoint recovery); here the same machinery is swept
and tabulated.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.reporting import Table
from repro.generation.traces import TraceConfig, generate_trace
from repro.model.serialization import task_to_dict
from repro.obs.metrics import percentile
from repro.service.drill import run_drill, spawn_primary
from repro.service.protocol import MAX_LINE_BYTES, decode, encode

__all__ = ["run"]


async def _open_loop_worker(
    port: int,
    tasks: list,
    schedule: list[float],
    epoch: float,
    latencies: list[float],
    responses: list[dict],
) -> None:
    """One pipelined connection: send on the Poisson schedule, never wait.

    The sender fires each admit at its scheduled offset from *epoch*
    (immediately once behind schedule -- open loop, the backlog is the
    server's problem); the receiver drains responses concurrently and
    records client-observed latency per request.
    """
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", port, limit=MAX_LINE_BYTES
    )
    sent: list[float] = []

    async def _send() -> None:
        for task, at in zip(tasks, schedule):
            delay = (epoch + at) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            writer.write(encode({"op": "admit", "task": task_to_dict(task)}))
            sent.append(time.perf_counter())
            await writer.drain()

    async def _recv() -> None:
        for index in range(len(tasks)):
            line = await reader.readline()
            if not line:
                return
            responses.append(decode(line))
            if index < len(sent):
                latencies.append(time.perf_counter() - sent[index])

    try:
        await asyncio.gather(_send(), _recv())
    except ConnectionError:
        pass
    finally:
        writer.close()


async def _drive_open_loop(
    port: int,
    tasks: list,
    concurrency: int,
    offered_rate: float,
    rng: np.random.Generator,
) -> tuple[list[dict], list[float], float]:
    """Poisson open-loop load: returns (responses, latencies, elapsed)."""
    arrivals = np.cumsum(
        rng.exponential(scale=1.0 / offered_rate, size=len(tasks))
    )
    shares: list[list] = [[] for _ in range(concurrency)]
    schedules: list[list[float]] = [[] for _ in range(concurrency)]
    for index, (task, at) in enumerate(zip(tasks, arrivals)):
        shares[index % concurrency].append(task)
        schedules[index % concurrency].append(float(at))
    latencies: list[float] = []
    responses: list[dict] = []
    started = time.perf_counter()
    await asyncio.gather(*(
        _open_loop_worker(
            port, share, schedule, started, latencies, responses
        )
        for share, schedule in zip(shares, schedules) if share
    ))
    return responses, latencies, time.perf_counter() - started


def _throughput_table(
    events: int, levels: tuple[int, ...], offered_rate: float, seed: int
) -> Table:
    table = Table(
        title="EXP-S: open-loop admission throughput (Poisson arrivals, "
        "batch group commit)",
        columns=[
            "connections",
            "offered adm/s",
            "sent",
            "completed",
            "accepted",
            "sustained adm/s",
            "latency p50 ms",
            "latency p95 ms",
            "latency max ms",
        ],
    )
    trace = generate_trace(
        TraceConfig(events=events, mean_lifetime=1e9), rng=seed
    )
    tasks = [e.task for e in trace if e.op == "admit" and e.task is not None]
    for level in levels:
        rng = np.random.default_rng(seed + level)
        with tempfile.TemporaryDirectory(prefix="exp_service_") as tmp:
            primary = spawn_primary(
                Path(tmp) / "primary.journal", processors=16, fsync="batch"
            )
            try:
                responses, latencies, elapsed = asyncio.run(_drive_open_loop(
                    primary.tcp_port, tasks, level, offered_rate, rng
                ))
            finally:
                primary.terminate()
        accepted = sum(
            1 for r in responses
            if r.get("ok") and r.get("decision", {}).get("accepted")
        )
        sustained = len(responses) / elapsed if elapsed else 0.0
        lat = sorted(latencies)
        table.add_row(
            level,
            round(offered_rate),
            len(tasks),
            len(responses),
            accepted,
            sustained,
            1e3 * percentile(lat, 50) if lat else 0.0,
            1e3 * percentile(lat, 95) if lat else 0.0,
            1e3 * lat[-1] if lat else 0.0,
        )
    table.notes.append(
        "every admission is durable before its response (one group fsync "
        "per coalesced batch); rejections are decisions and count toward "
        "throughput, exactly as in the library-level EXP-P soak.  "
        "'completed' < 'sent' would mean the run ended before the backlog "
        "drained -- the open-loop driver never cancels in-flight work."
    )
    return table


def _failover_table(drills: int, events: int, seed: int) -> Table:
    table = Table(
        title="EXP-S: kill-primary failover drills (SIGKILL mid-load, "
        "verified standby promotion)",
        columns=[
            "drills",
            "verified",
            "prefix consistent",
            "failover ms p50",
            "failover ms max",
            "staleness max",
            "replicated records",
        ],
    )
    failovers: list[float] = []
    staleness: list[int] = []
    replicated = 0
    verified = consistent = 0
    for round_index in range(drills):
        trace = generate_trace(
            TraceConfig(events=events), rng=seed + round_index
        )
        tasks = [
            e.task for e in trace if e.op == "admit" and e.task is not None
        ]
        with tempfile.TemporaryDirectory(prefix="exp_service_") as tmp:
            report = run_drill(
                tasks, Path(tmp), processors=16, concurrency=4,
                kill_after=max(4, len(tasks) // 3),
            )
        failovers.append(report.failover_seconds)
        staleness.append(report.staleness)
        replicated += report.replicated
        verified += int(report.verified)
        consistent += int(report.prefix_consistent)
    failovers.sort()
    table.add_row(
        drills,
        f"{verified}/{drills}",
        f"{consistent}/{drills}",
        1e3 * percentile(failovers, 50),
        1e3 * failovers[-1],
        max(staleness),
        replicated,
    )
    table.notes.append(
        "each drill spawns a real primary process, drives concurrent "
        "admissions, SIGKILLs it mid-load, and promotes the in-process "
        "standby: recover(verify=True) over the standby's verbatim journal "
        "+ snapshot equality with the live applied state + snapshot "
        "equality with a replay of the primary's journal prefix the "
        "standby covers.  Staleness is the in-flight window: records the "
        "dead primary had committed that were never streamed."
    )
    return table


def run(samples: int = 3, seed: int = 0, quick: bool = False) -> list[Table]:
    """Open-loop service throughput sweep + failover-drill distribution."""
    if quick:
        events, levels, offered, drills = 150, (2, 4), 800.0, 2
    else:
        events, levels, offered, drills = 400, (1, 2, 4, 8), 1200.0, max(
            samples, 3
        )
    return [
        _throughput_table(events, levels, offered, seed),
        _failover_table(drills, 120, seed),
    ]
