"""Crash-safe file I/O shared by every artifact writer and JSONL reader.

Every file this library persists -- decision CSVs, JSONL traces and
journals, metrics/explain JSON dumps, checkpoints -- used to be written with
a bare ``open(path, "w")``: a crash (or full disk) mid-write leaves a torn,
half-serialized file that silently poisons the next run.  This module is the
single choke point fixing that, with two complementary halves:

**Atomic writes** (:func:`atomic_write_text`, :func:`atomic_write_bytes`,
:func:`atomic_writer`) stage the content in a temporary file *in the target
directory*, flush and ``fsync`` it, then publish with ``os.replace`` -- which
POSIX guarantees is atomic within a filesystem.  Readers therefore observe
either the complete old file or the complete new file, never a prefix.

**Torn-tail-tolerant JSONL reading** (:func:`read_jsonl`).  Append-only
files (event journals, traces under concurrent writers) cannot be replaced
atomically, so the normal post-crash state is a final line cut mid-record
with no trailing newline.  :func:`read_jsonl` distinguishes that benign torn
tail (skipped with a logged warning, reported to the caller) from mid-file
corruption -- an unparsable line that *is* newline-terminated, or garbage
followed by further records -- which raises the typed
:class:`~repro.errors.PersistenceError`.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any

from repro.errors import PersistenceError
from repro.obs.logging import get_logger

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_writer",
    "fsync_directory",
    "read_jsonl",
    "write_pstats",
]

_log = get_logger(__name__)


def fsync_directory(directory: str | Path) -> None:
    """Best-effort fsync of *directory* so a just-published rename is durable.

    Silently skipped on platforms/filesystems that cannot open directories
    (the rename itself is still atomic there).
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(
    path: str | Path,
    mode: str = "w",
    newline: str | None = None,
    encoding: str | None = None,
    fsync: bool = True,
) -> Iterator[IO[Any]]:
    """Context manager yielding a handle whose content replaces *path* atomically.

    The handle writes to a temporary file in the same directory; on clean
    exit the temporary is flushed, optionally fsynced, and renamed over
    *path* with ``os.replace``.  On any exception the temporary is removed
    and *path* is left untouched.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer requires mode 'w' or 'wb', got {mode!r}")
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    if encoding is None and mode == "w":
        encoding = "utf-8"
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{target.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, newline=newline, encoding=encoding) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8", fsync: bool = True
) -> None:
    """Atomically replace *path* with *text* (temp file + fsync + rename)."""
    with atomic_writer(path, "w", encoding=encoding, fsync=fsync) as handle:
        handle.write(text)


def atomic_write_bytes(path: str | Path, data: bytes, fsync: bool = True) -> None:
    """Atomically replace *path* with *data* (temp file + fsync + rename)."""
    with atomic_writer(path, "wb", fsync=fsync) as handle:
        handle.write(data)


def write_pstats(path: str | Path, profiler: Any, fsync: bool = True) -> None:
    """Atomically persist a ``cProfile.Profile`` run as a ``pstats`` file.

    The written bytes are exactly what ``Profile.dump_stats`` produces (the
    marshalled stats table), so ``pstats.Stats(str(path))`` and
    ``snakeviz``-style viewers load it directly -- but the file appears
    atomically, like every other artifact this package writes.
    """
    import marshal

    profiler.create_stats()
    atomic_write_bytes(path, marshal.dumps(profiler.stats), fsync=fsync)


def read_jsonl(path: str | Path) -> tuple[list[dict], bool]:
    """Parse a JSONL file, tolerating (only) a crash-torn final line.

    Returns ``(records, torn)`` where *records* is the list of parsed JSON
    objects and *torn* is whether a torn tail was skipped.  Blank lines are
    ignored.  A line that fails to parse is treated as:

    * a **torn tail** -- skipped with a logged warning -- iff it is the last
      line of the file *and* the file does not end with a newline (the
      signature of a writer killed mid-``write``);
    * **mid-file corruption** otherwise, raising
      :class:`~repro.errors.PersistenceError`: a newline-terminated record
      was fully written, so an unparsable one means the file itself is
      damaged and silently dropping data would be unsound.
    """
    raw = Path(path).read_bytes()
    text = raw.decode("utf-8", errors="replace")
    ends_with_newline = text.endswith("\n")
    lines = text.splitlines()
    records: list[dict] = []
    torn = False
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            is_last = index == len(lines) - 1
            if is_last and not ends_with_newline:
                torn = True
                _log.warning(
                    "%s: skipping torn final line %d (%d byte(s)); the "
                    "writer crashed mid-record",
                    path, index + 1, len(line.encode("utf-8")),
                )
                break
            raise PersistenceError(
                f"{path}:{index + 1}: corrupt JSONL record: {exc}"
            ) from exc
    return records, torn
