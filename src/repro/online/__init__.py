"""Online admission control: incremental FEDCONS for dynamic task systems.

The batch analysis (:mod:`repro.core.fedcons`) answers "is this frozen task
set schedulable on ``m`` processors?".  This package answers the run-time
version of the question -- tasks arrive and depart while the platform is
live -- without re-running the two-phase analysis per event:

:class:`~repro.online.controller.AdmissionController`
    live FEDCONS state with incremental ``admit``/``depart``, a transactional
    compaction pass, and a from-scratch batch oracle
    (:meth:`~repro.online.controller.AdmissionController.reanalyze`).
:mod:`repro.online.trace`
    JSONL arrival/departure traces, deterministic replay, decision CSVs.
:mod:`repro.online.cli`
    the ``fedcons-admit`` command: generate and replay traces.

The per-processor demand ledgers live in :mod:`repro.core.shard` (shared
with the batch PARTITION); the sporadic trace generator lives in
:mod:`repro.generation.traces`.
"""

from repro.online.controller import (
    HIGH_DENSITY,
    LOW_DENSITY,
    AdmissionController,
    AdmissionDecision,
    DepartureReceipt,
)
from repro.online.trace import (
    ReplayRecord,
    ReplayReport,
    TraceEvent,
    load_trace,
    replay,
    save_trace,
)

__all__ = [
    "HIGH_DENSITY",
    "LOW_DENSITY",
    "AdmissionController",
    "AdmissionDecision",
    "DepartureReceipt",
    "TraceEvent",
    "ReplayRecord",
    "ReplayReport",
    "save_trace",
    "load_trace",
    "replay",
]
