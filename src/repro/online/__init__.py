"""Online admission control: incremental FEDCONS for dynamic task systems.

The batch analysis (:mod:`repro.core.fedcons`) answers "is this frozen task
set schedulable on ``m`` processors?".  This package answers the run-time
version of the question -- tasks arrive and depart while the platform is
live -- without re-running the two-phase analysis per event:

:class:`~repro.online.controller.AdmissionController`
    live FEDCONS state with incremental ``admit``/``depart``, a transactional
    compaction pass, and a from-scratch batch oracle
    (:meth:`~repro.online.controller.AdmissionController.reanalyze`).
:mod:`repro.online.trace`
    JSONL arrival/departure traces, deterministic replay, decision CSVs.
:mod:`repro.online.persist`
    durable state: append-only event :class:`~repro.online.persist.Journal`,
    atomic checkpoints, and crash :func:`~repro.online.persist.recover`
    (restore the checkpoint + oracle-checked replay of the journal tail).
:mod:`repro.online.cli`
    the ``fedcons-admit`` command: generate, replay and recover traces.

The per-processor demand ledgers live in :mod:`repro.core.shard` (shared
with the batch PARTITION); the sporadic trace generator lives in
:mod:`repro.generation.traces`.
"""

from repro.online.controller import (
    HIGH_DENSITY,
    LOW_DENSITY,
    SNAPSHOT_SCHEMA,
    AdmissionController,
    AdmissionDecision,
    DepartureReceipt,
    template_digest,
)
from repro.online.persist import (
    FSYNC_POLICIES,
    DurableController,
    Journal,
    JournalFollower,
    RecoveryReport,
    ReplicationCursor,
    load_checkpoint,
    recover,
    write_checkpoint,
)
from repro.online.trace import (
    ReplayRecord,
    ReplayReport,
    TraceEvent,
    load_trace,
    replay,
    save_trace,
)

__all__ = [
    "HIGH_DENSITY",
    "LOW_DENSITY",
    "SNAPSHOT_SCHEMA",
    "AdmissionController",
    "AdmissionDecision",
    "DepartureReceipt",
    "template_digest",
    "FSYNC_POLICIES",
    "DurableController",
    "Journal",
    "JournalFollower",
    "ReplicationCursor",
    "RecoveryReport",
    "write_checkpoint",
    "load_checkpoint",
    "recover",
    "TraceEvent",
    "ReplayRecord",
    "ReplayReport",
    "save_trace",
    "load_trace",
    "replay",
]
