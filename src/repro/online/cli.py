"""``fedcons-admit``: generate, replay and recover online admission traces.

Three subcommands::

    fedcons-admit generate TRACE.jsonl --events 200 -m 16 --seed 0
        write a deterministic sporadic arrival/departure trace (JSONL).

    fedcons-admit replay TRACE.jsonl -m 16 [--csv OUT.csv]
                  [--oracle-every N] [--metrics OUT.json] [--no-repack]
                  [--journal J.jsonl] [--checkpoint C.json]
                  [--checkpoint-every N] [--recover]
                  [--fsync always|batch|off]
        feed the trace through an AdmissionController and report per-event
        accept/reject decisions, throughput and admission latency; with
        ``--oracle-every N`` every N-th event is cross-checked against a
        from-scratch batch FEDCONS re-analysis.  With ``--journal`` every
        decision is committed to an append-only event journal (durability
        per ``--fsync``), with ``--checkpoint-every N`` the
        state is atomically re-published to ``--checkpoint`` every N events,
        and ``--recover`` first rebuilds the controller from the checkpoint
        + journal before replaying (so an interrupted replay resumes where
        its durable state left off).

    fedcons-admit recover JOURNAL.jsonl [--checkpoint C.json]
                  [--verify] [--exact] [--snapshot OUT.json]
                  [--metrics OUT.json]
        rebuild a controller from its durable state after a crash: restore
        the checkpoint (when given and present; otherwise replay from the
        journal's genesis record), replay the journal tail, cross-check
        every replayed decision against the recorded one, and optionally
        verify the result against the batch oracle.  With ``--metrics`` the
        recovery throughput counters/timers are written as JSON.

Both workload subcommands additionally take the telemetry export flags
``--prom OUT.prom`` (Prometheus text exposition), ``--trace-out OUT.jsonl``
(span trace, inspect with ``fedcons-obs show``) and ``--flight-dir DIR``
(arm the flight recorder; crash dumps land in DIR).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.obs import metrics
from repro.obs.cli import (
    add_observability_arguments,
    add_telemetry_arguments,
    configure_from_args,
    telemetry_session,
)

__all__ = ["admit_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fedcons-admit",
        description="Online FEDCONS admission control over event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="write a deterministic arrival/departure trace"
    )
    gen.add_argument("output", help="destination JSONL path")
    gen.add_argument("--events", type=int, default=200)
    gen.add_argument("-m", "--processors", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--heavy-fraction", type=float, default=0.25,
        help="fraction of arrivals drawn with cluster-tight deadlines",
    )
    gen.add_argument(
        "--mean-interarrival", type=float, default=1.0,
        help="mean inter-arrival time of the Poisson arrival process",
    )
    gen.add_argument(
        "--mean-lifetime", type=float, default=50.0,
        help="mean lifetime before a departure event is scheduled",
    )
    gen.add_argument(
        "--family", default=None, metavar="NAME",
        help="draw every arrival's DAG from this workload-zoo family "
        "(any repro.generation.families name; default erdos_renyi)",
    )
    gen.add_argument(
        "--dax", type=Path, default=None, metavar="FILE.dax",
        help="import a Pegasus DAX workflow and draw every arrival's DAG "
        "from it (overrides --family)",
    )
    add_observability_arguments(gen)

    rep = sub.add_parser(
        "replay", help="drive an AdmissionController with a stored trace"
    )
    rep.add_argument("trace", help="JSONL trace (see the generate subcommand)")
    rep.add_argument("-m", "--processors", type=int, required=True)
    rep.add_argument(
        "--csv", type=Path, default=None, metavar="OUT.csv",
        help="write the per-event decision table as CSV",
    )
    rep.add_argument(
        "--oracle-every", type=int, default=0, metavar="N",
        help="cross-check the incremental state against a from-scratch "
        "batch re-analysis every N events (0 = never)",
    )
    rep.add_argument(
        "--metrics", type=Path, default=None, metavar="OUT.json",
        help="collect admission counters/latency timers and write them as "
        "JSON",
    )
    rep.add_argument(
        "--no-repack", action="store_true",
        help="skip the compaction pass after low-density departures "
        "(faster departures, suspends batch-oracle equivalence)",
    )
    rep.add_argument(
        "--journal", type=Path, default=None, metavar="J.jsonl",
        help="commit every decision to this append-only event journal "
        "(fsync per commit); crash-torn tails are truncated on open",
    )
    rep.add_argument(
        "--checkpoint", type=Path, default=None, metavar="C.json",
        help="checkpoint file for --checkpoint-every / --recover",
    )
    rep.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="atomically re-publish the controller state to --checkpoint "
        "every N journaled events (0 = only on clean completion)",
    )
    rep.add_argument(
        "--recover", action="store_true",
        help="rebuild the controller from --checkpoint + --journal before "
        "replaying (resume an interrupted replay)",
    )
    rep.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="always",
        help="journal durability policy: 'always' fsyncs each commit, "
        "'batch' defers to one group fsync per coalesced batch, 'off' "
        "never fsyncs (faster; an OS crash may lose the last few events, "
        "a process crash may not)",
    )
    rep.add_argument(
        "--profile", type=Path, default=None, metavar="OUT.pstats",
        help="run the replay loop under cProfile and write the stats "
        "(pstats format) to this path",
    )
    add_observability_arguments(rep)
    add_telemetry_arguments(rep)

    rec = sub.add_parser(
        "recover",
        help="rebuild a controller from checkpoint + journal after a crash",
    )
    rec.add_argument("journal", help="append-only event journal (JSONL)")
    rec.add_argument(
        "--checkpoint", type=Path, default=None, metavar="C.json",
        help="checkpoint to restore before replaying the journal tail "
        "(omitted or missing: full replay from the genesis record)",
    )
    rec.add_argument(
        "--verify", action="store_true",
        help="verify the recovered state (schedulability of every template "
        "and bucket, batch-oracle equivalence while canonical)",
    )
    rec.add_argument(
        "--exact", action="store_true",
        help="with --verify, use the pseudo-polynomial exact EDF test",
    )
    rec.add_argument(
        "--snapshot", type=Path, default=None, metavar="OUT.json",
        help="write the recovered controller's lossless snapshot as JSON",
    )
    rec.add_argument(
        "--metrics", type=Path, default=None, metavar="OUT.json",
        help="collect recovery throughput counters/timers and write them "
        "as JSON",
    )
    add_observability_arguments(rec)
    add_telemetry_arguments(rec)
    return parser


def _generate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.generation.families import register_dax_family
    from repro.generation.traces import TraceConfig, generate_trace
    from repro.online.trace import save_trace

    config = TraceConfig(
        events=args.events,
        processors=args.processors,
        heavy_fraction=args.heavy_fraction,
        mean_interarrival=args.mean_interarrival,
        mean_lifetime=args.mean_lifetime,
    )
    family = args.family
    if args.dax is not None:
        family = register_dax_family(args.dax)
    if family is not None:
        config = replace(config, shape=replace(config.shape, dag_kind=family))
    events = generate_trace(config, args.seed)
    try:
        save_trace(events, args.output)
    except OSError as exc:
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2
    admits = sum(1 for e in events if e.op == "admit")
    print(
        f"wrote {len(events)} events ({admits} admits, "
        f"{len(events) - admits} departs) to {args.output}"
    )
    return 0


def _resume_cursor(events, records) -> int:
    """How many leading trace *events* the journal *records* already cover.

    The journal holds one record per controller call, but ``replay`` never
    calls the controller for an *absent* departure (the task was rejected or
    already gone), so those trace events leave no record: the cursor is found
    by aligning the two sequences.  Trailing absent departures that may or
    may not have been processed before the crash are left unconsumed --
    re-processing them is an idempotent no-op.
    """
    from repro.errors import PersistenceError

    decisions = [r for r in records if r.get("kind") in ("admit", "depart")]
    cursor = 0
    j = 0
    admitted: set[str] = set()
    for event in events:
        if j >= len(decisions):
            break
        record = decisions[j]
        if event.op == "admit":
            if record["kind"] != "admit" or record["id"] != event.task_id:
                raise PersistenceError(
                    f"journal record {record.get('n')} "
                    f"({record['kind']} {record.get('id')!r}) does not match "
                    f"trace event {cursor + 1} (admit {event.task_id!r}); "
                    "this journal was not produced by this trace"
                )
            if record["accepted"]:
                admitted.add(event.task_id)
            j += 1
        elif event.task_id in admitted:
            if record["kind"] != "depart" or record["id"] != event.task_id:
                raise PersistenceError(
                    f"journal record {record.get('n')} "
                    f"({record['kind']} {record.get('id')!r}) does not match "
                    f"trace event {cursor + 1} (depart {event.task_id!r}); "
                    "this journal was not produced by this trace"
                )
            admitted.discard(event.task_id)
            j += 1
        # absent departure: no controller call, no journal record
        cursor += 1
    if j < len(decisions):
        raise PersistenceError(
            f"journal holds {len(decisions) - j} decision record(s) beyond "
            "the end of the trace; this journal was not produced by this "
            "trace"
        )
    return cursor


def _replay(args: argparse.Namespace) -> int:
    from repro.online.controller import AdmissionController
    from repro.online.persist import DurableController, Journal, recover
    from repro.online.trace import load_trace, replay

    if args.checkpoint_every < 0:
        print("error: --checkpoint-every must be >= 0", file=sys.stderr)
        return 2
    if args.checkpoint_every and args.checkpoint is None:
        print(
            "error: --checkpoint-every requires --checkpoint", file=sys.stderr
        )
        return 2
    if args.recover and args.journal is None:
        print("error: --recover requires --journal", file=sys.stderr)
        return 2
    if args.metrics is not None:
        metrics.reset()
        metrics.enable()
    events = load_trace(args.trace)
    if args.recover and args.journal.exists():
        controller, recovery = recover(args.checkpoint, args.journal)
        print(recovery.describe())
        if controller.total_processors != args.processors:
            print(
                f"error: recovered state is for m="
                f"{controller.total_processors}, not m={args.processors}",
                file=sys.stderr,
            )
            return 2
        if not controller.repack_enabled and not args.no_repack:
            print("note: recovered controller has repack_on_departure=False")
        records, _ = Journal.read(args.journal)
        cursor = _resume_cursor(events, records)
        print(
            f"resuming at trace event {cursor + 1} of {len(events)} "
            f"({cursor} already journaled)"
        )
        events = events[cursor:]
    else:
        controller = AdmissionController(
            args.processors, repack_on_departure=not args.no_repack
        )
    if args.journal is not None:
        journal = Journal(args.journal, fsync=args.fsync)
        controller = DurableController(
            controller, journal,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        report = replay(controller, events, oracle_every=args.oracle_every)
    finally:
        if profiler is not None:
            profiler.disable()
    if profiler is not None:
        from repro.io import write_pstats

        try:
            write_pstats(args.profile, profiler)
        except OSError as exc:
            print(f"error: cannot write {args.profile}: {exc}", file=sys.stderr)
            return 2
        print(f"profile written to {args.profile}")
    if args.journal is not None:
        if args.checkpoint is not None:
            controller.checkpoint()
            print(
                f"journal {args.journal} at {controller.journal.entries} "
                f"record(s); checkpoint rotated to {args.checkpoint}"
            )
        else:
            print(
                f"journal {args.journal} at {controller.journal.entries} "
                "record(s)"
            )
        controller.close()
    print(report.describe())
    if args.metrics is not None:
        snapshot = metrics.snapshot()
        admit_timer = snapshot["timers"].get("online.admit_seconds")
        if admit_timer:
            print(
                f"mean admit latency "
                f"{1e6 * admit_timer['mean_seconds']:,.1f} us "
                f"(max {1e6 * admit_timer['max_seconds']:,.1f} us)"
            )
        admit_hist = snapshot["histograms"].get("online.admit_seconds")
        if admit_hist:
            print(
                f"admit latency p50 {1e6 * admit_hist['p50']:,.1f} us / "
                f"p95 {1e6 * admit_hist['p95']:,.1f} us / "
                f"p99 {1e6 * admit_hist['p99']:,.1f} us"
            )
        try:
            metrics.to_json(args.metrics)
        except OSError as exc:
            print(f"error: cannot write {args.metrics}: {exc}", file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics}")
    if args.csv is not None:
        try:
            report.to_csv(args.csv)
        except OSError as exc:
            print(f"error: cannot write {args.csv}: {exc}", file=sys.stderr)
            return 2
        print(f"decisions written to {args.csv}")
    return 0


def _recover(args: argparse.Namespace) -> int:
    from repro.io import atomic_write_text
    from repro.online.persist import recover

    if args.metrics is not None:
        metrics.reset()
        metrics.enable()
    controller, report = recover(
        args.checkpoint, args.journal, verify=args.verify, exact=args.exact
    )
    print(report.describe())
    if args.metrics is not None:
        snapshot = metrics.snapshot()
        replay_timer = snapshot["timers"].get("online.recover.replay_seconds")
        if replay_timer:
            print(
                f"mean replay latency "
                f"{1e6 * replay_timer['mean_seconds']:,.1f} us "
                f"(max {1e6 * replay_timer['max_seconds']:,.1f} us) over "
                f"{replay_timer['count']} record(s)"
            )
        try:
            metrics.to_json(args.metrics)
        except OSError as exc:
            print(f"error: cannot write {args.metrics}: {exc}", file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics}")
    if args.verify:
        print(
            "recovered state verified"
            + (" (exact EDF test)" if args.exact else "")
        )
    if args.snapshot is not None:
        try:
            atomic_write_text(
                args.snapshot,
                json.dumps(controller.snapshot(), indent=2) + "\n",
            )
        except OSError as exc:
            print(
                f"error: cannot write {args.snapshot}: {exc}", file=sys.stderr
            )
            return 2
        print(f"snapshot written to {args.snapshot}")
    return 0


def admit_main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_from_args(args)
    try:
        if args.command == "generate":
            return _generate(args)
        with telemetry_session(args):
            if args.command == "recover":
                return _recover(args)
            return _replay(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(admit_main())
