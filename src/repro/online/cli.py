"""``fedcons-admit``: generate and replay online admission traces.

Two subcommands::

    fedcons-admit generate TRACE.jsonl --events 200 -m 16 --seed 0
        write a deterministic sporadic arrival/departure trace (JSONL).

    fedcons-admit replay TRACE.jsonl -m 16 [--csv OUT.csv]
                  [--oracle-every N] [--metrics OUT.json] [--no-repack]
        feed the trace through an AdmissionController and report per-event
        accept/reject decisions, throughput and admission latency; with
        ``--oracle-every N`` every N-th event is cross-checked against a
        from-scratch batch FEDCONS re-analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.obs import metrics
from repro.obs.cli import add_observability_arguments, configure_from_args

__all__ = ["admit_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fedcons-admit",
        description="Online FEDCONS admission control over event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="write a deterministic arrival/departure trace"
    )
    gen.add_argument("output", help="destination JSONL path")
    gen.add_argument("--events", type=int, default=200)
    gen.add_argument("-m", "--processors", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--heavy-fraction", type=float, default=0.25,
        help="fraction of arrivals drawn with cluster-tight deadlines",
    )
    gen.add_argument(
        "--mean-interarrival", type=float, default=1.0,
        help="mean inter-arrival time of the Poisson arrival process",
    )
    gen.add_argument(
        "--mean-lifetime", type=float, default=50.0,
        help="mean lifetime before a departure event is scheduled",
    )
    add_observability_arguments(gen)

    rep = sub.add_parser(
        "replay", help="drive an AdmissionController with a stored trace"
    )
    rep.add_argument("trace", help="JSONL trace (see the generate subcommand)")
    rep.add_argument("-m", "--processors", type=int, required=True)
    rep.add_argument(
        "--csv", type=Path, default=None, metavar="OUT.csv",
        help="write the per-event decision table as CSV",
    )
    rep.add_argument(
        "--oracle-every", type=int, default=0, metavar="N",
        help="cross-check the incremental state against a from-scratch "
        "batch re-analysis every N events (0 = never)",
    )
    rep.add_argument(
        "--metrics", type=Path, default=None, metavar="OUT.json",
        help="collect admission counters/latency timers and write them as "
        "JSON",
    )
    rep.add_argument(
        "--no-repack", action="store_true",
        help="skip the compaction pass after low-density departures "
        "(faster departures, suspends batch-oracle equivalence)",
    )
    add_observability_arguments(rep)
    return parser


def _generate(args: argparse.Namespace) -> int:
    from repro.generation.traces import TraceConfig, generate_trace
    from repro.online.trace import save_trace

    config = TraceConfig(
        events=args.events,
        processors=args.processors,
        heavy_fraction=args.heavy_fraction,
        mean_interarrival=args.mean_interarrival,
        mean_lifetime=args.mean_lifetime,
    )
    events = generate_trace(config, args.seed)
    try:
        save_trace(events, args.output)
    except OSError as exc:
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2
    admits = sum(1 for e in events if e.op == "admit")
    print(
        f"wrote {len(events)} events ({admits} admits, "
        f"{len(events) - admits} departs) to {args.output}"
    )
    return 0


def _replay(args: argparse.Namespace) -> int:
    from repro.online.controller import AdmissionController
    from repro.online.trace import load_trace, replay

    if args.metrics is not None:
        metrics.reset()
        metrics.enable()
    events = load_trace(args.trace)
    controller = AdmissionController(
        args.processors, repack_on_departure=not args.no_repack
    )
    report = replay(controller, events, oracle_every=args.oracle_every)
    print(report.describe())
    if args.metrics is not None:
        snapshot = metrics.snapshot()
        admit_timer = snapshot["timers"].get("online.admit_seconds")
        if admit_timer:
            print(
                f"mean admit latency "
                f"{1e6 * admit_timer['mean_seconds']:,.1f} us "
                f"(max {1e6 * admit_timer['max_seconds']:,.1f} us)"
            )
        try:
            args.metrics.write_text(json.dumps(snapshot, indent=2) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.metrics}: {exc}", file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics}")
    if args.csv is not None:
        try:
            report.to_csv(args.csv)
        except OSError as exc:
            print(f"error: cannot write {args.csv}: {exc}", file=sys.stderr)
            return 2
        print(f"decisions written to {args.csv}")
    return 0


def admit_main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_from_args(args)
    try:
        if args.command == "generate":
            return _generate(args)
        return _replay(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(admit_main())
