"""Durable controller state: checkpoints + an append-only event journal.

PR 3's :class:`~repro.online.controller.AdmissionController` treats admitted
state as a contract -- but a process crash used to void it: the snapshot had
no restore path and nothing recorded the event history.  This module makes
the contract survive the scheduler, with the classic database recipe:

* a **checkpoint** is the controller's lossless
  :meth:`~repro.online.controller.AdmissionController.snapshot`, wrapped
  with the journal offset it reflects and published atomically
  (:func:`write_checkpoint` -- temp file + fsync + ``os.replace``, so a
  crash mid-rotation leaves the previous checkpoint intact);
* a :class:`Journal` is an append-only JSONL log of **every** decision --
  accepted and rejected admits (with the full serialized task), departures,
  compaction passes -- fsynced per commit, with crash-torn final records
  detected (and physically truncated) on open;
* :func:`recover` = restore the latest checkpoint (or rebuild from the
  journal's genesis record) + replay the journal tail through the real
  controller.  Replay is *oracle-checked*: each journal record carries the
  original decision outcome, and the deterministic controller must
  reproduce it exactly -- any divergence raises
  :class:`~repro.errors.PersistenceError` instead of silently serving from
  a wrong state.

The durability point is ``Journal.append`` returning under the default
``fsync="always"`` policy: an event is part of history once its record is
fsynced, and :class:`DurableController` applies the event to the in-memory
state *before* journaling it, so a crash between the two replays the event
from the previous record boundary -- sound either way because the
controller is a deterministic function of its event history.  Under the
``batch`` policy the durability point moves to :meth:`Journal.sync` (one
group commit per coalesced admit batch, the admission-service fast path);
``off`` trades durability for speed in experiments.

The journal doubles as the replication stream: :class:`JournalFollower`
tail-reads complete records as a writer appends them (never consuming a
torn tail), and :class:`ReplicationCursor` tracks how far a warm standby
has streamed and acknowledged, bounding failover staleness to the
in-flight window.  See :mod:`repro.service` for the server/standby pair
built on these pieces.

Typical use::

    journal = Journal("ctl.journal")
    durable = DurableController(
        AdmissionController(16), journal,
        checkpoint_path="ctl.ckpt.json", checkpoint_every=50,
    )
    durable.admit(task); durable.depart(task.name)

    # after a crash:
    controller, report = recover("ctl.ckpt.json", "ctl.journal")
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.errors import OnlineError, PersistenceError
from repro.io import atomic_write_text, read_jsonl
from repro.model.serialization import task_from_dict, task_to_dict
from repro.model.task import SporadicDAGTask
from repro.obs.events import Checkpoint, Recovery, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics
from repro.obs.spans import span as _span
from repro.online.controller import (
    AdmissionController,
    AdmissionDecision,
    DepartureReceipt,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "CHECKPOINT_SCHEMA",
    "FSYNC_POLICIES",
    "Journal",
    "JournalFollower",
    "ReplicationCursor",
    "DurableController",
    "RecoveryReport",
    "write_checkpoint",
    "load_checkpoint",
    "recover",
]

_log = get_logger(__name__)

#: Version of the journal record format (the ``genesis`` record carries it).
JOURNAL_SCHEMA = 1
#: Version of the checkpoint *wrapper*; the embedded controller state is
#: versioned separately by ``snapshot()["schema_version"]``.
CHECKPOINT_SCHEMA = 1


def _dump(record: dict) -> str:
    # No sort_keys: the serialized task must round-trip with its vertex
    # order intact.  JSON object order is what dag_from_dict rebuilds the
    # DAG in, and that order is a List-Scheduling tie-break -- sorting keys
    # here would make a replayed controller diverge from the original.
    return json.dumps(record, separators=(",", ":"))


#: Durability policies for :class:`Journal` appends, weakest-to-strongest
#: cost: ``"off"`` never forces stable storage (simulated-crash replays),
#: ``"batch"`` defers the fsync to the next :meth:`Journal.sync` (the
#: admission service's group commit: one fsync per coalesced batch),
#: ``"always"`` fsyncs every append (the PR 4 default, one fsync per event).
FSYNC_POLICIES = ("always", "batch", "off")


class Journal:
    """Append-only JSONL event log with a configurable fsync policy.

    Opening an existing journal scans it once: a crash-torn final record
    (unparsable *and* missing its newline) is logged, counted in
    ``online.journal.torn_tails`` and physically truncated away so the next
    append starts at a record boundary; any earlier unparsable record is
    mid-file corruption and raises :class:`PersistenceError`.  Records are
    numbered contiguously by an ``n`` field assigned here -- a gap on read
    also raises, so silent record loss cannot masquerade as a short history.

    *fsync* selects the durability point (see :data:`FSYNC_POLICIES`):

    ``"always"``
        each :meth:`append` is fsynced before returning -- an event is part
        of history the moment its commit call returns;
    ``"batch"``
        appends are written and flushed to the OS, but the fsync is deferred
        to the next :meth:`sync` -- the group-commit mode the admission
        service uses (one fsync per coalesced batch of concurrent arrivals);
        a host crash may lose the current unsynced group, a process crash
        may not;
    ``"off"``
        appends are flushed but never fsynced -- for bulk experiment replays
        where the "crash" is simulated anyway.

    The legacy boolean (``True``/``False`` from the PR 4 API) is still
    accepted and maps to ``"always"``/``"off"``.
    """

    def __init__(self, path: str | Path, fsync: str | bool = "always") -> None:
        if isinstance(fsync, bool):
            fsync = "always" if fsync else "off"
        if fsync not in FSYNC_POLICIES:
            raise OnlineError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._dirty = False  # batch mode: unsynced appends pending
        self._truncate_torn_tail()
        records, torn = read_jsonl(self._path) if self._path.exists() else ([], False)
        assert not torn  # the tail was physically truncated above
        _validate_contiguous(records, self._path)
        self._entries = len(records)
        self._handle = open(self._path, "a", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no complete record survived
        _log.warning(
            "%s: truncating torn tail (%d byte(s) after the last complete "
            "record) left by a crashed writer",
            self._path, len(raw) - keep,
        )
        if _metrics.enabled:
            _metrics.incr("online.journal.torn_tails")
        with open(self._path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def entries(self) -> int:
        """Number of complete records in the journal (== the next ``n``)."""
        return self._entries

    @property
    def fsync_policy(self) -> str:
        """The configured durability policy (see :data:`FSYNC_POLICIES`)."""
        return self._fsync

    def append(self, record: dict) -> int:
        """Commit one record; returns its index ``n``.

        Under the ``"always"`` policy the event is durable when this
        returns; under ``"batch"`` it is durable at the next :meth:`sync`
        (and flushed to the OS either way).  A *record* that already carries
        an ``n`` field (a replicated record from another journal) keeps it
        -- the standby's journal is a verbatim copy, and the contiguity
        check on reopen still applies.
        """
        n = self._entries
        with _span("online.journal.append", n=n, fsync=self._fsync):
            started = time.perf_counter() if _metrics.enabled else 0.0
            self._handle.write(_dump({"n": n, **record}) + "\n")
            self._handle.flush()
            if self._fsync == "always":
                os.fsync(self._handle.fileno())
            elif self._fsync == "batch":
                self._dirty = True
            self._entries = n + 1
            if _metrics.enabled:
                _metrics.incr("online.journal.appends")
                _metrics.record_time(
                    "online.journal.append_seconds",
                    time.perf_counter() - started,
                )
        return n

    def sync(self) -> None:
        """Force pending appends to stable storage (the group-commit point).

        Only meaningful under the ``"batch"`` policy, and only when appends
        are pending: ``"always"`` has nothing to flush and ``"off"`` opted
        out of durability entirely, so both are no-ops.
        """
        if self._fsync != "batch" or not self._dirty:
            return
        started = time.perf_counter() if _metrics.enabled else 0.0
        os.fsync(self._handle.fileno())
        self._dirty = False
        if _metrics.enabled:
            _metrics.incr("online.journal.group_syncs")
            _metrics.record_time(
                "online.journal.sync_seconds", time.perf_counter() - started
            )

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: str | Path) -> tuple[list[dict], bool]:
        """All complete records of a journal plus whether a torn tail was
        skipped (the file is not modified; use the constructor to also
        truncate)."""
        records, torn = read_jsonl(path)
        _validate_contiguous(records, path)
        return records, torn


def _validate_contiguous(records: list[dict], path: str | Path) -> None:
    for expected, record in enumerate(records):
        if record.get("n") != expected:
            raise PersistenceError(
                f"{path}: journal record {expected} carries n={record.get('n')!r}; "
                "records are missing or reordered (mid-file corruption)"
            )


class JournalFollower:
    """Incremental (tail-follow) reader of a live journal file.

    Each :meth:`poll` returns the complete records appended since the last
    poll, in order, never consuming a partially written final line -- the
    follower only advances past newline-terminated records, so it can run
    concurrently with a writer that is mid-append.  Contiguity of the ``n``
    numbering is enforced across polls; a gap raises
    :class:`PersistenceError` exactly like a mid-file corruption on open.

    This is the replication substrate for a standby that shares the
    primary's filesystem, and the catch-up reader the admission service uses
    to stream journal history to a newly subscribed replica.
    """

    def __init__(self, path: str | Path, start: int = 0) -> None:
        if start < 0:
            raise OnlineError(f"start offset must be >= 0, got {start}")
        self._path = Path(path)
        self._position = 0  # byte offset of the first unconsumed record
        self._next = 0  # record number the next poll must yield first
        if start:
            # Fast-forward through (and validate) the skipped prefix.
            skipped = self.poll(limit=start)
            if len(skipped) < start:
                raise PersistenceError(
                    f"{self._path}: cannot start following at record {start}; "
                    f"journal holds only {len(skipped)} complete record(s)"
                )

    @property
    def path(self) -> Path:
        return self._path

    @property
    def position(self) -> int:
        """Record number the next :meth:`poll` result starts at."""
        return self._next

    def poll(self, limit: int | None = None) -> list[dict]:
        """New complete records since the last poll (empty when none).

        With *limit* set, at most that many records are consumed; the rest
        stay buffered in the file for the next poll.
        """
        if not self._path.exists():
            return []
        with open(self._path, "rb") as handle:
            handle.seek(self._position)
            raw = handle.read()
        records: list[dict] = []
        offset = 0
        while offset < len(raw):
            if limit is not None and len(records) >= limit:
                break
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # torn tail (or mid-append): leave it for next poll
            line = raw[offset : newline + 1]
            stripped = line.strip()
            if stripped:
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(
                        f"{self._path}: unparsable newline-terminated record "
                        f"at byte {self._position + offset} (mid-file "
                        f"corruption): {exc}"
                    ) from exc
                if record.get("n") != self._next:
                    raise PersistenceError(
                        f"{self._path}: expected record {self._next}, found "
                        f"n={record.get('n')!r}; records are missing or "
                        "reordered"
                    )
                records.append(record)
                self._next += 1
            offset = newline + 1
            self._position += len(line)
        return records


@dataclass
class ReplicationCursor:
    """Progress of one journal follower (a warm standby) against a primary.

    ``streamed`` counts records handed to the follower's transport;
    ``acked`` counts records the follower confirmed *applied* (its
    acknowledgement offset).  The primary's failover-staleness bound is the
    in-flight window ``entries - acked`` -- everything older is already live
    in the standby's state, not merely in its socket buffer.
    """

    streamed: int = 0
    acked: int = 0

    def advance(self, streamed: int) -> None:
        if streamed > self.streamed:
            self.streamed = streamed

    def acknowledge(self, acked: int) -> None:
        """Record the follower's applied-offset acknowledgement.

        Acknowledgements are monotone; a stale or duplicated ack (replicas
        may re-send on reconnect) is ignored, an ack beyond what was ever
        streamed is a protocol violation.
        """
        if acked > self.streamed:
            raise PersistenceError(
                f"replica acknowledged {acked} record(s) but only "
                f"{self.streamed} were streamed to it"
            )
        if acked > self.acked:
            self.acked = acked

    @property
    def lag(self) -> int:
        """Records streamed but not yet acknowledged (the in-flight window)."""
        return self.streamed - self.acked


# ---------------------------------------------------------------------------
# journal records
# ---------------------------------------------------------------------------
def genesis_record(controller: AdmissionController) -> dict:
    """The journal's first record: enough to rebuild an empty controller."""
    snapshot = controller.snapshot()
    return {
        "kind": "genesis",
        "journal_schema": JOURNAL_SCHEMA,
        "processors": controller.total_processors,
        "ls_order": snapshot["ls_order"],
        "repack_on_departure": snapshot["repack_on_departure"],
    }


def admit_record(task: SporadicDAGTask, decision: AdmissionDecision) -> dict:
    """One admit decision -- rejected arrivals included, so replay reproduces
    the sequence counter exactly."""
    return {
        "kind": "admit",
        "id": decision.task_id,
        "task": task_to_dict(task),
        "accepted": decision.accepted,
        "decided": decision.kind,
        "processors": list(decision.processors),
        "reason": decision.reason,
    }


def depart_record(receipt: DepartureReceipt) -> dict:
    return {
        "kind": "depart",
        "id": receipt.task_id,
        "decided": receipt.kind,
        "released": list(receipt.released),
        "migrations": receipt.migrations,
        "clean": receipt.clean,
    }


def compact_record(migrations: int, clean: bool) -> dict:
    return {"kind": "compact", "migrations": migrations, "clean": clean}


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------
def write_checkpoint(
    controller: AdmissionController,
    path: str | Path,
    journal_entries: int,
) -> None:
    """Atomically publish a checkpoint of *controller* to *path*.

    *journal_entries* is the number of journal records the snapshot already
    reflects; :func:`recover` replays only records from that offset on.  The
    write is temp-file + fsync + ``os.replace``, so rotation can never leave
    a torn checkpoint -- a crash mid-write keeps the previous generation.
    """
    started = time.perf_counter()
    with _span("online.checkpoint.write", journal_entries=journal_entries):
        snapshot = controller.snapshot()
        document = {
            "checkpoint_schema": CHECKPOINT_SCHEMA,
            "journal_entries": journal_entries,
            "state": snapshot,
        }
        atomic_write_text(Path(path), json.dumps(document, indent=2) + "\n")
    elapsed = time.perf_counter() - started
    if _metrics.enabled:
        _metrics.incr("online.checkpoint.writes")
        _metrics.record_time("online.checkpoint.seconds", elapsed)
    ctx = current_context()
    if ctx is not None:
        ctx.record(
            Checkpoint(
                path=str(path),
                journal_entries=journal_entries,
                admitted=snapshot["admitted"],
                seq=snapshot["seq"],
            )
        )
    _log.info(
        "CHECKPOINT %s: %d admitted task(s) at journal offset %d",
        path, snapshot["admitted"], journal_entries,
    )


def load_checkpoint(path: str | Path) -> tuple[AdmissionController, int]:
    """Restore a controller from a checkpoint file.

    Returns ``(controller, journal_entries)`` where *journal_entries* is the
    journal offset the checkpoint reflects.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{path}: checkpoint is not valid JSON: {exc}") from exc
    version = document.get("checkpoint_schema")
    if version != CHECKPOINT_SCHEMA:
        raise PersistenceError(
            f"{path}: unsupported checkpoint_schema {version!r} "
            f"(this build reads version {CHECKPOINT_SCHEMA})"
        )
    try:
        journal_entries = int(document["journal_entries"])
        state = document["state"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"{path}: malformed checkpoint: {exc}") from exc
    return AdmissionController.restore(state), journal_entries


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one :func:`recover` run."""

    checkpoint_used: bool
    journal_entries: int  # complete records found in the journal
    replayed: int  # records applied on top of the starting state
    torn_tail: bool  # a crash-torn final record was skipped
    admitted: int  # tasks admitted in the recovered state
    elapsed_seconds: float

    def describe(self) -> str:
        source = (
            "latest checkpoint" if self.checkpoint_used else "journal genesis"
        )
        lines = [
            f"recovered from {source}: replayed {self.replayed} of "
            f"{self.journal_entries} journal record(s) in "
            f"{self.elapsed_seconds:.3f}s",
            f"{self.admitted} task(s) admitted in the recovered state",
        ]
        if self.torn_tail:
            lines.append("a crash-torn final journal record was skipped")
        return "\n".join(lines)


def _replay_record(controller: AdmissionController, record: dict) -> None:
    """Apply one journal record, cross-checking the recorded outcome."""
    kind = record.get("kind")
    n = record.get("n")
    try:
        if kind == "admit":
            task = task_from_dict(record["task"])
            decision = controller.admit(task)
            recorded = (
                record["accepted"], record["decided"],
                tuple(record["processors"]),
            )
            replayed = (decision.accepted, decision.kind, decision.processors)
        elif kind == "depart":
            receipt = controller.depart(record["id"])
            recorded = (
                record["decided"], tuple(record["released"]),
                record["migrations"], record["clean"],
            )
            replayed = (
                receipt.kind, receipt.released,
                receipt.migrations, receipt.clean,
            )
        elif kind == "compact":
            migrations, clean = controller.compact()
            recorded = (record["migrations"], record["clean"])
            replayed = (migrations, clean)
        else:
            raise PersistenceError(
                f"journal record {n} has unknown kind {kind!r}"
            )
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError, OnlineError) as exc:
        raise PersistenceError(
            f"journal record {n} ({kind}) cannot be replayed: {exc}"
        ) from exc
    if recorded != replayed:
        raise PersistenceError(
            f"journal record {n} ({kind} {record.get('id', '')!r}) diverged "
            f"on replay: journal says {recorded}, controller produced "
            f"{replayed} -- the durable state does not describe this build's "
            "deterministic history"
        )


def recover(
    checkpoint: str | Path | None,
    journal: str | Path,
    verify: bool = False,
    exact: bool = False,
) -> tuple[AdmissionController, RecoveryReport]:
    """Rebuild a controller after a crash: restore + replay-from-offset.

    *checkpoint* may be ``None`` (or a not-yet-existing path): recovery then
    replays the whole journal from its genesis record.  A torn final journal
    record -- the normal post-crash state -- is skipped with a warning; any
    other corruption, a journal/checkpoint offset mismatch, or a replayed
    decision diverging from the recorded one raises
    :class:`PersistenceError`.

    With ``verify=True`` the recovered state is additionally oracle-checked:
    it must pass :meth:`AdmissionController.verify` (pseudo-polynomial exact
    test with ``exact=True``) and, while canonical, match the from-scratch
    batch re-analysis (:meth:`AdmissionController.matches_batch`).

    Returns ``(controller, report)``.
    """
    with _span("online.recover", journal=str(journal)) as sp:
        controller, report = _recover(checkpoint, journal, verify, exact)
        sp.set(
            replayed=report.replayed,
            checkpoint_used=report.checkpoint_used,
            torn_tail=report.torn_tail,
        )
        return controller, report


def _recover(
    checkpoint: str | Path | None,
    journal: str | Path,
    verify: bool,
    exact: bool,
) -> tuple[AdmissionController, RecoveryReport]:
    started = time.perf_counter()
    records, torn = Journal.read(journal)
    if not records:
        raise PersistenceError(
            f"{journal}: journal holds no complete record; nothing to recover"
        )
    checkpoint_used = False
    if checkpoint is not None and Path(checkpoint).exists():
        controller, start = load_checkpoint(checkpoint)
        checkpoint_used = True
        if start > len(records):
            raise PersistenceError(
                f"checkpoint reflects {start} journal record(s) but "
                f"{journal} holds only {len(records)}; the journal was "
                "truncated behind the checkpoint's back"
            )
    else:
        genesis = records[0]
        if genesis.get("kind") != "genesis":
            raise PersistenceError(
                f"{journal}: first record is {genesis.get('kind')!r}, not "
                "genesis; cannot recover without a checkpoint"
            )
        schema = genesis.get("journal_schema")
        if schema != JOURNAL_SCHEMA:
            raise PersistenceError(
                f"{journal}: unsupported journal_schema {schema!r} "
                f"(this build reads version {JOURNAL_SCHEMA})"
            )
        try:
            controller = AdmissionController(
                int(genesis["processors"]),
                ls_order=str(genesis["ls_order"]),
                repack_on_departure=bool(genesis["repack_on_departure"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"{journal}: malformed genesis record: {exc}"
            ) from exc
        start = 1
    replayed = 0
    for record in records[start:]:
        if _metrics.enabled:
            replay_started = time.perf_counter()
            _replay_record(controller, record)
            _metrics.record_time(
                "online.recover.replay_seconds",
                time.perf_counter() - replay_started,
            )
        else:
            _replay_record(controller, record)
        replayed += 1
    if verify:
        if not controller.verify(exact=exact):
            raise PersistenceError(
                "recovered state fails the schedulability verification"
            )
        if controller.canonical and not controller.matches_batch():
            raise PersistenceError(
                "recovered state diverges from the from-scratch batch "
                "re-analysis"
            )
    elapsed = time.perf_counter() - started
    if _metrics.enabled:
        _metrics.incr("online.recover.runs")
        _metrics.incr("online.recover.replayed", replayed)
        if torn:
            _metrics.incr("online.recover.torn_tails")
        _metrics.record_time("online.recover.seconds", elapsed)
    ctx = current_context()
    if ctx is not None:
        ctx.record(
            Recovery(
                checkpoint_used=checkpoint_used,
                journal_entries=len(records),
                replayed=replayed,
                torn_tail=torn,
                admitted=controller.admitted_count,
            )
        )
    report = RecoveryReport(
        checkpoint_used=checkpoint_used,
        journal_entries=len(records),
        replayed=replayed,
        torn_tail=torn,
        admitted=controller.admitted_count,
        elapsed_seconds=elapsed,
    )
    _log.info("RECOVER: %s", "; ".join(report.describe().splitlines()))
    return controller, report


# ---------------------------------------------------------------------------
# the journaling wrapper
# ---------------------------------------------------------------------------
class DurableController:
    """An :class:`AdmissionController` whose decisions survive a crash.

    Wraps a controller with a :class:`Journal` and (optionally) rotating
    checkpoints: every ``admit``/``depart``/``compact`` is applied, then
    committed to the journal; after every *checkpoint_every* committed
    events the full state is atomically re-published to *checkpoint_path*.
    Caller errors (duplicate id, unknown departure) raise before any state
    change and are never journaled.

    Everything else -- ``verify``, ``matches_batch``, ``snapshot``,
    inspection properties -- delegates to the wrapped controller, so a
    ``DurableController`` drops into every API taking an
    :class:`AdmissionController` (``replay`` included).
    """

    def __init__(
        self,
        controller: AdmissionController,
        journal: Journal,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
    ) -> None:
        if checkpoint_every < 0:
            raise OnlineError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_path is None:
            raise OnlineError(
                "checkpoint_every requires a checkpoint_path to rotate into"
            )
        self._controller = controller
        self._journal = journal
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        if journal.entries == 0:
            journal.append(genesis_record(controller))

    @property
    def controller(self) -> AdmissionController:
        return self._controller

    @property
    def journal(self) -> Journal:
        return self._journal

    def __getattr__(self, name: str):
        return getattr(self._controller, name)

    def _committed(self) -> None:
        self._since_checkpoint += 1
        if (
            self._checkpoint_every
            and self._since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    def admit(self, task: SporadicDAGTask) -> AdmissionDecision:
        with _span("online.commit", op="admit", task=getattr(task, "name", None)):
            decision = self._controller.admit(task)
            self._journal.append(admit_record(task, decision))
            self._committed()
            return decision

    def admit_many(
        self, tasks: Iterable[SporadicDAGTask]
    ) -> list[AdmissionDecision]:
        """Commit a coalesced batch of arrivals with one group fsync.

        Each task is applied and journaled exactly as :meth:`admit` would
        (same decisions, same record contents, same order), but under the
        ``batch`` fsync policy the journal is flushed once after the whole
        group instead of once per record -- this is the durability point for
        the entire batch, and the throughput lever the admission service
        relies on.  Under ``always``/``off`` policies the call degrades to a
        plain sequential loop.
        """
        tasks = list(tasks)
        with _span("online.commit_group", op="admit_many", size=len(tasks)):
            decisions = []
            try:
                for task in tasks:
                    decision = self._controller.admit(task)
                    self._journal.append(admit_record(task, decision))
                    decisions.append(decision)
            finally:
                # Whatever was applied must be durable, even if a later
                # task in the batch raised a caller error.
                self._journal.sync()
            for _ in decisions:
                self._committed()
            return decisions

    def depart(self, task_id: str) -> DepartureReceipt:
        with _span("online.commit", op="depart", task=task_id):
            receipt = self._controller.depart(task_id)
            self._journal.append(depart_record(receipt))
            self._committed()
            return receipt

    def compact(self) -> tuple[int, bool]:
        with _span("online.commit", op="compact"):
            migrations, clean = self._controller.compact()
            self._journal.append(compact_record(migrations, clean))
            self._committed()
            return migrations, clean

    def checkpoint(self) -> None:
        """Publish the current state to *checkpoint_path* atomically."""
        if self._checkpoint_path is None:
            raise OnlineError("no checkpoint_path configured")
        write_checkpoint(
            self._controller, self._checkpoint_path, self._journal.entries
        )
        self._since_checkpoint = 0

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "DurableController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
