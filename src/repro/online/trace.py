"""Event traces for the online admission controller.

A trace is an ordered sequence of :class:`TraceEvent` records -- ``admit``
events carrying a full serialized :class:`~repro.model.task.SporadicDAGTask`,
``depart`` events carrying a task id -- stored one JSON object per line
(JSONL), so traces stream, diff and concatenate trivially::

    {"op": "admit", "task_id": "t0001", "at": 0.73, "task": {...}}
    {"op": "depart", "task_id": "t0001", "at": 41.2}

:func:`replay` feeds a trace through an
:class:`~repro.online.controller.AdmissionController` and returns a
:class:`ReplayReport` of per-event :class:`ReplayRecord` rows plus aggregate
accept/reject/latency statistics; ``oracle_every=k`` additionally re-runs the
batch FEDCONS re-analysis after every ``k``-th event and asserts the
incremental state matches it.  The record rows (not the latencies) are a pure
function of the trace and platform, which is what the committed golden trace
in ``tests/data/`` pins.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import OnlineError
from repro.io import atomic_write_text, atomic_writer, read_jsonl
from repro.model.serialization import task_from_dict, task_to_dict
from repro.model.task import SporadicDAGTask
from repro.online.controller import AdmissionController

__all__ = [
    "TraceEvent",
    "ReplayRecord",
    "ReplayReport",
    "save_trace",
    "load_trace",
    "replay",
]

#: Replay outcomes beyond plain accept/reject.
DEPARTED = "departed"
ABSENT = "absent"  # depart of a task that is not admitted (e.g. was rejected)


@dataclass(frozen=True)
class TraceEvent:
    """One event of an arrival/departure trace.

    ``op`` is ``"admit"`` (with ``task`` set) or ``"depart"``; ``at`` is the
    event's logical timestamp -- informational only, replay is order-driven.
    """

    op: str
    task_id: str
    at: float = 0.0
    task: SporadicDAGTask | None = None

    def __post_init__(self) -> None:
        if self.op not in ("admit", "depart"):
            raise OnlineError(f"trace op must be admit|depart, got {self.op!r}")
        if self.op == "admit" and self.task is None:
            raise OnlineError(f"admit event {self.task_id!r} carries no task")

    def to_dict(self) -> dict:
        record: dict = {"op": self.op, "task_id": self.task_id, "at": self.at}
        if self.task is not None:
            record["task"] = task_to_dict(self.task)
        return record

    @staticmethod
    def from_dict(record: dict) -> "TraceEvent":
        task = record.get("task")
        return TraceEvent(
            op=record.get("op", "?"),
            task_id=record.get("task_id", ""),
            at=float(record.get("at", 0.0)),
            task=task_from_dict(task) if task is not None else None,
        )


def save_trace(events: Iterable[TraceEvent], path: str | Path) -> None:
    """Write *events* as JSONL (one compact JSON object per line).

    The write is atomic (temp file + fsync + rename): a crash mid-save
    leaves either the previous trace or the complete new one, never a torn
    prefix.
    """
    lines = [
        json.dumps(event.to_dict(), separators=(",", ":"), sort_keys=True)
        for event in events
    ]
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Parse a JSONL trace file.

    A crash-torn final line (unparsable and missing its newline -- the
    normal state of a trace whose writer died mid-record) is skipped with a
    logged warning; mid-file corruption and events failing
    :class:`TraceEvent` validation raise :class:`OnlineError` (the former
    via its :class:`~repro.errors.PersistenceError` subtype).
    """
    records, _ = read_jsonl(path)
    return [TraceEvent.from_dict(record) for record in records]


@dataclass(frozen=True)
class ReplayRecord:
    """The controller's decision for one trace event."""

    seq: int  # 1-based event index within the replay
    op: str
    task_id: str
    kind: str  # high_density | low_density | "" (absent departures)
    outcome: str  # accepted | rejected | departed | absent
    reason: str  # rejection reason, "" otherwise
    processors: tuple[int, ...]  # granted (admits) or released (departures)
    migrations: int
    latency_seconds: float

    def csv_row(self) -> list[str]:
        """Deterministic CSV cells (latency deliberately excluded)."""
        return [
            str(self.seq),
            self.op,
            self.task_id,
            self.kind,
            self.outcome,
            self.reason,
            " ".join(str(p) for p in self.processors),
            str(self.migrations),
        ]


CSV_HEADER = [
    "seq", "op", "task_id", "kind", "outcome", "reason", "processors",
    "migrations",
]


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying one trace."""

    processors: int
    records: list[ReplayRecord] = field(default_factory=list)
    accepted: int = 0
    rejected: int = 0
    departed: int = 0
    absent: int = 0
    migrations: int = 0
    oracle_checks: int = 0
    anomalies: int = 0  # rejected compaction passes (state kept, sound)
    elapsed_seconds: float = 0.0
    peak_admitted: int = 0

    @property
    def events(self) -> int:
        return len(self.records)

    @property
    def events_per_second(self) -> float:
        return self.events / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def to_csv(self, path: str | Path) -> None:
        """Write the per-event decision table as deterministic CSV (atomic)."""
        import csv

        with atomic_writer(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(CSV_HEADER)
            for record in self.records:
                writer.writerow(record.csv_row())

    def summary(self) -> dict:
        """JSON-ready aggregate statistics."""
        return {
            "events": self.events,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "departed": self.departed,
            "absent": self.absent,
            "migrations": self.migrations,
            "peak_admitted": self.peak_admitted,
            "oracle_checks": self.oracle_checks,
            "anomalies": self.anomalies,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_second": self.events_per_second,
        }

    def describe(self) -> str:
        lines = [
            f"replayed {self.events} events on m={self.processors}: "
            f"{self.accepted} accepted, {self.rejected} rejected, "
            f"{self.departed} departed ({self.absent} absent)",
            f"peak admitted {self.peak_admitted}, "
            f"{self.migrations} migration(s), {self.anomalies} anomaly(ies)",
        ]
        if self.elapsed_seconds:
            lines.append(
                f"{self.events_per_second:,.0f} events/s "
                f"({self.elapsed_seconds:.3f}s total)"
            )
        if self.oracle_checks:
            lines.append(
                f"batch oracle verified at {self.oracle_checks} checkpoint(s)"
            )
        return "\n".join(lines)


def replay(
    controller: AdmissionController,
    events: Sequence[TraceEvent],
    oracle_every: int = 0,
) -> ReplayReport:
    """Feed *events* through *controller*, collecting per-event decisions.

    Departures of task ids that are not currently admitted (rejected earlier,
    already departed, or never seen) are recorded as ``absent`` -- a trace
    generator cannot know which of its arrivals the controller will accept.

    With ``oracle_every=k > 0``, every ``k``-th event is followed by a
    from-scratch batch re-analysis which must match the incremental state
    (only enforced while the controller is canonical).

    Raises
    ------
    OnlineError
        If an oracle checkpoint finds the incremental state diverging from
        the batch re-analysis.
    """
    report = ReplayReport(processors=controller.total_processors)
    admitted: set[str] = set(controller.admitted_ids)
    started = time.perf_counter()
    for index, event in enumerate(events, start=1):
        if event.op == "admit":
            decision = controller.admit(event.task)
            if decision.accepted:
                admitted.add(event.task_id)
                report.accepted += 1
            else:
                report.rejected += 1
            record = ReplayRecord(
                seq=index,
                op="admit",
                task_id=event.task_id,
                kind=decision.kind,
                outcome="accepted" if decision.accepted else "rejected",
                reason=decision.reason or "",
                processors=decision.processors,
                migrations=0,
                latency_seconds=decision.latency_seconds,
            )
        elif event.task_id not in admitted:
            report.absent += 1
            record = ReplayRecord(
                seq=index,
                op="depart",
                task_id=event.task_id,
                kind="",
                outcome=ABSENT,
                reason="",
                processors=(),
                migrations=0,
                latency_seconds=0.0,
            )
        else:
            receipt = controller.depart(event.task_id)
            admitted.discard(event.task_id)
            report.departed += 1
            report.migrations += receipt.migrations
            if not receipt.clean:
                report.anomalies += 1
            record = ReplayRecord(
                seq=index,
                op="depart",
                task_id=event.task_id,
                kind=receipt.kind,
                outcome=DEPARTED,
                reason="",
                processors=receipt.released,
                migrations=receipt.migrations,
                latency_seconds=receipt.latency_seconds,
            )
        report.records.append(record)
        report.peak_admitted = max(report.peak_admitted, len(admitted))
        if oracle_every and index % oracle_every == 0 and controller.canonical:
            if not controller.matches_batch():
                raise OnlineError(
                    f"batch oracle diverged from incremental state after "
                    f"event {index} ({event.op} {event.task_id!r})"
                )
            report.oracle_checks += 1
    report.elapsed_seconds = time.perf_counter() - started
    return report
