"""Online admission control: incremental FEDCONS over a live task population.

Batch :func:`repro.core.fedcons.fedcons` analyses a frozen task set once.  An
:class:`AdmissionController` maintains the *same* federated-scheduling state
on ``m`` processors while tasks arrive and depart at run time, processing
each event incrementally:

* a **high-density admit** runs MINPROCS against the processors not yet
  dedicated (one List-Scheduling search, served from the
  :mod:`repro.core.cache` MINPROCS cache when enabled) and carves the cluster
  out of the shared pool's empty tail;
* a **low-density admit** is a first-fit probe of the per-processor
  :class:`~repro.core.shard.ShardState` demand ledgers using the
  order-independently sound ``DBF*`` test -- ``O(affected test points)`` per
  candidate processor, never a full re-partition;
* a **departure** releases a dedicated cluster back to the shared pool
  (high-density) or removes the task from its shard and replays the
  placements of later-admitted low-density tasks (the compaction pass) so
  freed capacity is actually reusable.

Canonical equivalence (the batch oracle)
----------------------------------------

An online controller cannot reorder history, so its canonical reference is
FEDCONS over the *currently admitted tasks in admission order* with the
partition phase in ``GIVEN`` order under the order-independent
``DBF_APPROX_ALL_POINTS`` admission test -- exactly what
:meth:`AdmissionController.reanalyze` runs.  While :attr:`canonical` is true
(always, unless a compaction pass was rejected by its safety check or
``repack_on_departure=False`` suspended compaction), the incremental state
equals that from-scratch re-analysis *exactly*: same accept/reject decision
for every event, same per-task cluster sizes, same shared-pool size, and the
same task-to-bucket assignment.  The supporting invariants:

1. a task's minimal cluster size ``mu*`` is independent of the processor
   budget (MINPROCS stops at the first fitting ``mu``), and re-analysis
   budgets only grow as earlier tasks depart;
2. first-fit placement is *prefix-stable*: adding or removing empty buckets
   on the right never changes where tasks land, and low-density tasks always
   fit an empty bucket (``delta < 1``), so occupied buckets form a prefix;
3. a newly admitted task is last in admission order, so its probe sequence
   in the incremental state equals its probe sequence in the re-analysis;
4. after a low-density departure, tasks admitted *before* it are unaffected
   (their probes never saw it) and tasks admitted after are replayed
   first-fit from the surviving prefix -- which is precisely the re-analysis.

First-fit is not monotone under removal: very rarely, the replay after a
departure cannot place every surviving task.  The compaction pass is
transactional -- migrations are committed only if every replayed placement
passes the same ``DBF*`` test -- so in that case the pre-departure
assignment (minus the departed task) is kept.  The state remains sound
(demand only decreased) but :attr:`canonical` turns false until a successful
:meth:`compact` restores the canonical packing.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import OnlineError, PersistenceError
from repro.core.fedcons import FailureReason, FedConsResult, fedcons
from repro.core.kernels import flags as _kernel_flags
from repro.core.minprocs import minprocs
from repro.core.partition import AdmissionTest, PartitionResult, TaskOrder
from repro.core.schedule import Schedule, Slot
from repro.core.shard import ShardProbeMatrix, ShardState
from repro.model.serialization import task_from_dict, task_to_dict
from repro.model.sporadic import SporadicTask
from repro.model.task import SporadicDAGTask
from repro.model.taskset import TaskSystem
from repro.obs.events import Admission, Departure, Reclamation, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics
from repro.obs.spans import current_span as _current_span
from repro.obs.spans import span as _span

__all__ = [
    "SNAPSHOT_SCHEMA",
    "HIGH_DENSITY",
    "LOW_DENSITY",
    "AdmissionDecision",
    "DepartureReceipt",
    "AdmissionController",
    "template_digest",
]

_log = get_logger(__name__)

HIGH_DENSITY = "high_density"
LOW_DENSITY = "low_density"

#: Version of the lossless :meth:`AdmissionController.snapshot` format.
#: Version 1 was the summary-only (irrecoverable) format of PR 3; version 2
#: adds everything :meth:`AdmissionController.restore` needs for exact
#: reconstruction.
SNAPSHOT_SCHEMA = 2

#: Rejection reason for a task that is not constrained-deadline (batch
#: ``fedcons`` raises ``ModelError`` instead; an online server must not).
NOT_CONSTRAINED = "not_constrained"

#: Batched shard probes only pay off past a few shards / a few candidates,
#: and only when the shards are crowded enough that the scalar probe's
#: O(points) scan actually costs something: against near-empty ledgers the
#: scalar path is a bisect plus a couple of comparisons and the broadcast
#: is pure overhead.  ``PROBE_MATRIX_MIN_POINTS`` is the *average* stored
#: test points per shard required to open a batched session.  Module
#: attributes so tests can force either path on tiny platforms.
PROBE_MATRIX_MIN_SHARDS = 4
PROBE_MATRIX_MIN_BATCH = 4
PROBE_MATRIX_MIN_POINTS = 24


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one ``admit(task)`` request.

    ``processors`` holds the granted physical processor indices: the whole
    dedicated cluster for a high-density task, the single shared processor
    for a low-density one, empty on rejection.
    """

    accepted: bool
    task_id: str
    kind: str  # HIGH_DENSITY | LOW_DENSITY
    seq: int
    processors: tuple[int, ...] = ()
    reason: str | None = None
    latency_seconds: float = 0.0


@dataclass(frozen=True)
class DepartureReceipt:
    """Outcome of one ``depart(task_id)`` request.

    ``released`` lists the physical processors returned to the shared pool
    (the dedicated cluster; empty for a low-density departure -- its shard
    capacity is reclaimed in place).  ``migrations`` counts low-density tasks
    the compaction pass moved; ``clean`` is whether that pass passed its
    ``DBF*`` safety obligation and was committed.
    """

    task_id: str
    kind: str
    seq: int
    released: tuple[int, ...] = ()
    migrations: int = 0
    clean: bool = True
    latency_seconds: float = 0.0


@dataclass
class _LowEntry:
    """Book-keeping for one admitted low-density task."""

    task: SporadicDAGTask
    sporadic: SporadicTask
    seq: int  # admission sequence number: the canonical order & shard rank
    bucket: int  # current shared-bucket index

    __slots__ = ("task", "sporadic", "seq", "bucket")


@dataclass
class _Cluster:
    """Book-keeping for one admitted high-density task."""

    task: SporadicDAGTask
    processors: tuple[int, ...]
    schedule: Schedule
    seq: int

    __slots__ = ("task", "processors", "schedule", "seq")


def _encode_vertex(vertex) -> str:
    return str(vertex)


def _decode_vertex(text: str):
    try:
        return int(text)
    except (TypeError, ValueError):
        return text


def _template_to_dict(schedule: Schedule) -> dict:
    """JSON-ready lossless encoding of one dedicated LS template."""
    return {
        "processors": schedule.processors,
        "makespan": schedule.makespan,
        "slots": [
            [_encode_vertex(s.vertex), s.start, s.end, s.processor]
            for s in schedule.slots
        ],
        "digest": template_digest(schedule),
    }


def _template_from_dict(data: dict, task: SporadicDAGTask) -> Schedule:
    """Rebuild (and integrity-check) a template from its snapshot record."""
    try:
        slots = [
            Slot(
                start=float(start), end=float(end),
                processor=int(proc), vertex=_decode_vertex(vertex),
            )
            for vertex, start, end, proc in data["slots"]
        ]
        schedule = Schedule(task.dag, slots, int(data["processors"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"malformed template record for task {task.name!r}: {exc}"
        ) from exc
    expected = data.get("digest")
    if expected is not None and template_digest(schedule) != expected:
        raise PersistenceError(
            f"template digest mismatch for task {task.name!r}: the snapshot "
            "does not describe the schedule it claims to"
        )
    return schedule


def template_digest(schedule: Schedule) -> str:
    """Content digest of a dedicated LS template.

    A stable blake2b over the cluster size and the (sorted) slot table --
    float-exact via JSON's repr round-trip -- so a restored snapshot can
    prove its templates are bit-identical to what the original controller
    held, without re-running MINPROCS.
    """
    payload = json.dumps(
        {
            "m": schedule.processors,
            "slots": sorted(
                [_encode_vertex(s.vertex), s.start, s.end, s.processor]
                for s in schedule.slots
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class _ProbeBatchSession:
    """One ``admit_many`` batch's verdict cache over the shard probe matrix.

    Built when a batch of low-density candidates is coalesced: every
    candidate is probed against every shard in one ``probe_many`` broadcast
    up front.  Keeping those verdicts current across the batch leans on
    demand monotonicity: an accept only *adds* demand and utilization to its
    shard, so a ``False`` verdict can never flip back to ``True`` within the
    batch and stays trusted as-is.  Only ``True`` verdicts against a shard
    that accepted something since the broadcast (a *stale* column) may have
    flipped; those are re-validated lazily -- one candidate against one
    shard, with the very scalar ``fits_all_points`` probe the sequential
    path would run -- exactly when a first-fit scan reaches them.  Each
    decision therefore sees verdicts bit-identical to the scalar path at
    the moment it is taken, and an accept costs O(1) bookkeeping instead of
    an O(batch) column recompute.
    """

    __slots__ = ("_controller", "_sporadics", "_rows", "_verdicts", "_stale")

    def __init__(
        self,
        controller: "AdmissionController",
        names: Sequence[str],
        sporadics: Sequence[SporadicTask],
    ) -> None:
        self._controller = controller
        self._sporadics = list(sporadics)
        self._rows = {name: i for i, name in enumerate(names)}
        matrix = controller._ensure_probe_matrix()
        self._verdicts = matrix.probe_many(self._sporadics)
        self._stale = [False] * len(controller._shards)

    def first_fit(self, name: str) -> int | None:
        """Lowest fitting shard index for candidate *name*; ``None`` if the
        candidate fits nowhere; ``-1`` when *name* is not in this batch."""
        row_index = self._rows.get(name)
        if row_index is None:
            return -1
        row = self._verdicts[row_index]
        sporadic = self._sporadics[row_index]
        shards = self._controller._shards
        for k in np.flatnonzero(row):
            k = int(k)
            if not self._stale[k]:
                return k
            fits = shards[k].fits_all_points(sporadic)
            row[k] = fits
            if fits:
                return k
        return None

    def committed(self, bucket: int) -> None:
        """Record that an accept mutated shard *bucket*: its ``True``
        verdicts are no longer trusted and re-validate lazily from now on."""
        self._stale[bucket] = True


class AdmissionController:
    """Live FEDCONS state on ``m`` processors with incremental admit/depart.

    Parameters
    ----------
    processors:
        Platform size ``m`` (>= 1).
    ls_order:
        List-Scheduling priority order for MINPROCS templates.
    repack_on_departure:
        Run the compaction pass after each low-density departure (default).
        Disabling it makes departures O(bucket) but suspends canonical
        equivalence with the batch re-analysis until :meth:`compact` is
        called; the state stays sound either way.
    """

    def __init__(
        self,
        processors: int,
        ls_order: str = "longest_path",
        repack_on_departure: bool = True,
    ) -> None:
        if processors < 1:
            raise OnlineError(
                f"platform must have >= 1 processor, got {processors}"
            )
        self._m = processors
        self._ls_order = ls_order
        self._repack = repack_on_departure
        #: every admitted task in admission order (the canonical system order)
        self._tasks: dict[str, SporadicDAGTask] = {}
        self._clusters: dict[str, _Cluster] = {}
        self._low: dict[str, _LowEntry] = {}
        #: physical processor behind each shared bucket, in bucket order
        self._shared: list[int] = list(range(processors))
        self._buckets: list[list[_LowEntry]] = [[] for _ in range(processors)]
        self._shards: list[ShardState] = [ShardState() for _ in range(processors)]
        self._seq = 0
        self._canonical = True
        #: lazily-built padded mirror of the shard ledgers for batched probes
        self._probe_matrix: ShardProbeMatrix | None = None
        #: active admit_many batch session (column-invalidated verdicts)
        self._batch: _ProbeBatchSession | None = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total_processors(self) -> int:
        """Platform size ``m``."""
        return self._m

    @property
    def canonical(self) -> bool:
        """Whether the state provably equals the batch re-analysis."""
        return self._canonical

    @property
    def repack_enabled(self) -> bool:
        """Whether departures trigger the compaction pass."""
        return self._repack

    @property
    def admitted_ids(self) -> tuple[str, ...]:
        """Ids of every admitted task, in admission order."""
        return tuple(self._tasks)

    @property
    def seq(self) -> int:
        """Number of state-changing events processed (the event counter)."""
        return self._seq

    @property
    def admitted_count(self) -> int:
        return len(self._tasks)

    @property
    def dedicated_processor_count(self) -> int:
        return sum(len(c.processors) for c in self._clusters.values())

    @property
    def shared_processor_count(self) -> int:
        return len(self._shared)

    @property
    def shared_processors(self) -> tuple[int, ...]:
        """Physical indices behind the shared buckets, in bucket order."""
        return tuple(self._shared)

    def cluster_of(self, task_id: str) -> tuple[int, ...]:
        """Physical processors dedicated to high-density task *task_id*."""
        try:
            return self._clusters[task_id].processors
        except KeyError:
            raise OnlineError(
                f"no admitted high-density task {task_id!r}"
            ) from None

    def bucket_of(self, task_id: str) -> int:
        """Shared-bucket index holding low-density task *task_id*."""
        try:
            return self._low[task_id].bucket
        except KeyError:
            raise OnlineError(f"no admitted low-density task {task_id!r}") from None

    def to_partition_result(self) -> PartitionResult:
        """The shared pool's current assignment as a :class:`PartitionResult`."""
        return PartitionResult(
            success=True,
            assignment=tuple(
                tuple(e.sporadic for e in bucket) for bucket in self._buckets
            ),
            processors=len(self._shared),
            dag_tasks={e.sporadic.name: e.task for e in self._low.values()},
        )

    def verify(self, exact: bool = False) -> bool:
        """Soundness check of the whole deployment.

        Every dedicated template must meet its deadline and every shared
        bucket must pass the uniprocessor EDF test (``DBF*`` by default,
        the pseudo-polynomial exact criterion with ``exact=True``).
        """
        for cluster in self._clusters.values():
            if not cluster.schedule.meets_deadline(cluster.task.deadline):
                return False
        return self.to_partition_result().verify(exact=exact)

    def snapshot(self) -> dict:
        """Lossless, JSON-ready image of the live state (schema-versioned).

        Everything :meth:`restore` needs for *exact* reconstruction is
        captured: the admission-test configuration (``ls_order``,
        ``repack_on_departure``), the sequence counter and ``canonical``
        flag, the full free-pool layout (physical processor behind every
        shared bucket, *including empty buckets* -- first-fit placement
        depends on their positions), and per admitted task its serialized
        model, admission sequence number, and either the dedicated LS
        template (slots + digest; restoring never re-runs MINPROCS) or the
        shared-bucket index.  The summary keys of the original format are
        retained on top for dashboards and logs.

        The result is a pure function of the controller state:
        ``snapshot -> restore -> snapshot`` is a fixed point, which the
        crash-recovery suite pins.
        """
        tasks: list[dict] = []
        for name, task in self._tasks.items():
            cluster = self._clusters.get(name)
            if cluster is not None:
                tasks.append(
                    {
                        "id": name,
                        "kind": HIGH_DENSITY,
                        "seq": cluster.seq,
                        "task": task_to_dict(task),
                        "cluster": list(cluster.processors),
                        "template": _template_to_dict(cluster.schedule),
                    }
                )
            else:
                entry = self._low[name]
                tasks.append(
                    {
                        "id": name,
                        "kind": LOW_DENSITY,
                        "seq": entry.seq,
                        "task": task_to_dict(task),
                        "bucket": entry.bucket,
                    }
                )
        return {
            "schema_version": SNAPSHOT_SCHEMA,
            "processors": self._m,
            "ls_order": self._ls_order,
            "repack_on_departure": self._repack,
            "seq": self._seq,
            "admitted": len(self._tasks),
            "high_density": len(self._clusters),
            "low_density": len(self._low),
            "dedicated_processors": self.dedicated_processor_count,
            "shared_processors": len(self._shared),
            "occupied_shared": sum(1 for b in self._buckets if b),
            "shared_utilization": sum(s.utilization for s in self._shards),
            "canonical": self._canonical,
            "pool": list(self._shared),
            "clusters": {
                name: list(c.processors) for name, c in self._clusters.items()
            },
            "buckets": {
                self._shared[k]: [e.sporadic.name for e in bucket]
                for k, bucket in enumerate(self._buckets)
                if bucket
            },
            "tasks": tasks,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "AdmissionController":
        """Rebuild a controller from a :meth:`snapshot` -- exactly.

        No analysis is re-run: dedicated templates are reloaded from their
        serialized slots (and integrity-checked against the stored digest),
        and the per-bucket ``DBF*`` ledgers are recomputed left-to-right
        from the sorted entries, which by the :class:`ShardState`
        history-independence guarantee reproduces the original floats bit
        for bit.  ``restore(snapshot(c))`` is indistinguishable from ``c``:
        same snapshot, same future decisions.

        Raises
        ------
        PersistenceError
            On an unsupported ``schema_version`` or a structurally
            inconsistent snapshot (overlapping processor grants, digest
            mismatches, out-of-range bucket indices...).
        """
        version = snapshot.get("schema_version")
        if version != SNAPSHOT_SCHEMA:
            raise PersistenceError(
                f"unsupported snapshot schema_version {version!r} "
                f"(this build reads version {SNAPSHOT_SCHEMA}); summary-only "
                "version-1 snapshots cannot be restored"
            )
        try:
            m = int(snapshot["processors"])
            pool = [int(p) for p in snapshot["pool"]]
            task_records = snapshot["tasks"]
            seq = int(snapshot["seq"])
            canonical = bool(snapshot["canonical"])
            ls_order = str(snapshot["ls_order"])
            repack = bool(snapshot["repack_on_departure"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed snapshot: {exc}") from exc
        controller = cls(m, ls_order=ls_order, repack_on_departure=repack)
        controller._shared = pool
        controller._buckets = [[] for _ in pool]
        controller._shards = []
        granted: set[int] = set()
        # Admission (seq) order: the canonical system order of _tasks and the
        # within-bucket order that the compaction replay depends on.
        try:
            task_records = sorted(task_records, key=lambda r: int(r["seq"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed snapshot task record: {exc}") from exc
        for record in task_records:
            try:
                name = str(record["id"])
                kind = record["kind"]
                task = task_from_dict(record["task"])
                task_seq = int(record["seq"])
            except (KeyError, TypeError, ValueError) as exc:
                raise PersistenceError(
                    f"malformed snapshot task record: {exc}"
                ) from exc
            if task.name != name or name in controller._tasks:
                raise PersistenceError(
                    f"snapshot task record {name!r} is inconsistent with its "
                    "serialized task model"
                )
            if kind == HIGH_DENSITY:
                processors = tuple(int(p) for p in record["cluster"])
                schedule = _template_from_dict(record["template"], task)
                if schedule.processors != len(processors):
                    raise PersistenceError(
                        f"template of {name!r} is sized for "
                        f"{schedule.processors} processors but the snapshot "
                        f"grants {len(processors)}"
                    )
                if not schedule.meets_deadline(task.deadline):
                    raise PersistenceError(
                        f"restored template of {name!r} misses its deadline "
                        f"({schedule.makespan:g} > {task.deadline:g})"
                    )
                granted.update(processors)
                controller._clusters[name] = _Cluster(
                    task=task, processors=processors,
                    schedule=schedule, seq=task_seq,
                )
            elif kind == LOW_DENSITY:
                bucket = int(record["bucket"])
                if not 0 <= bucket < len(pool):
                    raise PersistenceError(
                        f"task {name!r} sits in bucket {bucket} but the "
                        f"snapshot pool has {len(pool)} buckets"
                    )
                entry = _LowEntry(
                    task=task, sporadic=task.to_sporadic(),
                    seq=task_seq, bucket=bucket,
                )
                controller._buckets[bucket].append(entry)
                controller._low[name] = entry
            else:
                raise PersistenceError(
                    f"task {name!r} has unknown kind {kind!r}"
                )
            controller._tasks[name] = task
        claimed = sorted(granted) + sorted(pool)
        if sorted(claimed) != list(range(m)) or len(claimed) != m:
            raise PersistenceError(
                "snapshot processor grants and pool do not partition "
                f"the {m}-processor platform"
            )
        controller._shards = [
            ShardState((e.sporadic, e.seq) for e in bucket)
            for bucket in controller._buckets
        ]
        controller._seq = seq
        controller._canonical = canonical
        return controller

    # ------------------------------------------------------------------
    # the batch oracle
    # ------------------------------------------------------------------
    def reanalyze(self) -> FedConsResult | None:
        """From-scratch FEDCONS of the admitted set in canonical order.

        ``None`` when no task is admitted.  This is the reference the
        incremental state is measured against: partition order ``GIVEN``
        (admission order -- an online system cannot reorder history) under
        the order-independently sound ``DBF*`` test.
        """
        if not self._tasks:
            return None
        return fedcons(
            TaskSystem(self._tasks.values()),
            self._m,
            ls_order=self._ls_order,
            partition_order=TaskOrder.GIVEN,
            partition_admission=AdmissionTest.DBF_APPROX_ALL_POINTS,
        )

    def matches_batch(self, batch: FedConsResult | None = None) -> bool:
        """Whether the incremental state equals the batch re-analysis.

        Compares acceptance, per-task cluster sizes, the shared-pool size and
        the bucket-by-bucket task assignment.  Guaranteed true while
        :attr:`canonical` holds; callers may pass a precomputed *batch*
        result to avoid re-running :meth:`reanalyze`.
        """
        if batch is None:
            batch = self.reanalyze()
        if batch is None:
            return not self._tasks
        if not batch.success:
            return False
        mine = {
            name: len(c.processors) for name, c in self._clusters.items()
        }
        theirs = {
            a.task.name: a.cluster_size for a in batch.allocations
        }
        if mine != theirs:
            return False
        if batch.shared_processor_count != len(self._shared):
            return False
        assert batch.partition is not None
        batch_buckets = [
            tuple(t.name for t in bucket) for bucket in batch.partition.assignment
        ]
        mine_buckets = [
            tuple(e.sporadic.name for e in bucket) for bucket in self._buckets
        ]
        return batch_buckets == mine_buckets

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, task: SporadicDAGTask) -> AdmissionDecision:
        """Process one arrival; O(one MINPROCS) or O(probe * test points).

        Raises
        ------
        OnlineError
            If the task is unnamed or its name collides with an admitted
            task (caller errors); schedulability problems are *rejections*,
            not exceptions.
        """
        started = time.perf_counter()
        if not isinstance(task, SporadicDAGTask):
            raise OnlineError(
                f"admit() takes a SporadicDAGTask, got {type(task).__name__}"
            )
        if not task.name:
            raise OnlineError("online tasks must carry a unique non-empty name")
        if task.name in self._tasks:
            raise OnlineError(f"task id {task.name!r} is already admitted")
        with _span("online.admit", task=task.name):
            self._seq += 1
            kind = HIGH_DENSITY if task.is_high_density else LOW_DENSITY
            if not task.is_constrained_deadline:
                return self._reject(task, kind, NOT_CONSTRAINED, started)
            if task.span > task.deadline:
                return self._reject(
                    task, kind, FailureReason.STRUCTURALLY_INFEASIBLE.value,
                    started,
                )
            if kind == HIGH_DENSITY:
                return self._admit_high(task, started)
            return self._admit_low(task, started)

    def admit_many(
        self, tasks: Iterable[SporadicDAGTask]
    ) -> list[AdmissionDecision]:
        """Process a coalesced batch of arrivals in one incremental pass.

        Order-deterministic and *equivalent to sequential admits*: the batch
        is processed in iteration order through the exact same incremental
        machinery as :meth:`admit`, so the decisions, the shard ledgers
        (bit for bit -- ShardState floats are history-independent), and the
        sequence counter all equal what ``[self.admit(t) for t in tasks]``
        would have produced.  The point of the batch API is *not* a
        different algorithm; it is the commit granularity: a
        :class:`~repro.online.persist.DurableController` fsyncs a batch
        once, and the admission service coalesces concurrent arrivals into
        one such group.  The equivalence is pinned by a hypothesis property
        over random traces mixed with adversarial gadget instances.

        Caller errors (unnamed task, duplicate id -- including a duplicate
        *within* the batch) raise :class:`OnlineError` exactly where the
        sequential loop would; decisions already made in this batch remain
        applied, mirroring the sequential semantics.
        """
        tasks = list(tasks)
        with _span("online.admit_many", size=len(tasks)):
            self._batch = self._open_batch_session(tasks)
            try:
                decisions = [self.admit(task) for task in tasks]
            finally:
                self._batch = None
        if _metrics.enabled:
            _metrics.incr("online.admit_batches")
            _metrics.observe("online.admit_batch_size", len(tasks))
        return decisions

    def _open_batch_session(
        self, tasks: list[SporadicDAGTask]
    ) -> _ProbeBatchSession | None:
        """Batched-probe session for an all-low-density batch, else ``None``.

        The batched path is a pure evaluation strategy -- verdicts are
        bit-identical to the scalar scan -- so gating is purely about cost:
        kernels on, enough shards, candidates, and stored test points to
        beat the scalar loop, and no high-density task in the batch (a
        carve would reshape the shard list mid-batch; such mixed batches
        take the scalar path).
        """
        if (
            not _kernel_flags.enabled
            or len(self._shards) < PROBE_MATRIX_MIN_SHARDS
            or len(tasks) < PROBE_MATRIX_MIN_BATCH
            or sum(len(shard) for shard in self._shards)
            < PROBE_MATRIX_MIN_POINTS * len(self._shards)
        ):
            return None
        names: list[str] = []
        sporadics: list[SporadicTask] = []
        for task in tasks:
            if (
                not isinstance(task, SporadicDAGTask)
                or not task.name
                or task.is_high_density
            ):
                return None
            names.append(task.name)
            sporadics.append(task.to_sporadic())
        return _ProbeBatchSession(self, names, sporadics)

    def _ensure_probe_matrix(self) -> ShardProbeMatrix:
        """The padded probe matrix, rebuilt if invalidated or reshaped."""
        matrix = self._probe_matrix
        if matrix is None or matrix.shard_count != len(self._shards):
            matrix = ShardProbeMatrix(self._shards)
            self._probe_matrix = matrix
            if _metrics.enabled:
                _metrics.incr("online.probe_matrix_builds")
        return matrix

    def _admit_high(
        self, task: SporadicDAGTask, started: float
    ) -> AdmissionDecision:
        budget = len(self._shared)
        result = minprocs(task, budget, order=self._ls_order)
        if result is None:
            return self._reject(
                task, HIGH_DENSITY, FailureReason.HIGH_DENSITY_PHASE.value,
                started,
            )
        new_pool = budget - result.processors
        highest_occupied = max(
            (k for k, bucket in enumerate(self._buckets) if bucket), default=-1
        )
        if highest_occupied >= new_pool:
            # The shrunken shared pool could no longer carry the admitted
            # low-density tasks: the batch re-analysis would fail in the
            # PARTITION phase, so the arrival is turned away.
            return self._reject(
                task, HIGH_DENSITY, FailureReason.PARTITION_PHASE.value,
                started,
                detail={"cluster": result.processors, "pool_after": new_pool},
            )
        granted = tuple(self._shared[new_pool:])
        del self._shared[new_pool:]
        del self._buckets[new_pool:]
        del self._shards[new_pool:]
        self._probe_matrix = None
        self._clusters[task.name] = _Cluster(
            task=task,
            processors=granted,
            schedule=result.schedule,
            seq=self._seq,
        )
        self._tasks[task.name] = task
        return self._accept(
            task, HIGH_DENSITY, granted, started,
            detail={"cluster": len(granted), "attempts": result.attempts},
        )

    def _admit_low(
        self, task: SporadicDAGTask, started: float
    ) -> AdmissionDecision:
        """First-fit scan of the shared shards with the order-independent
        ``DBF*`` probe.

        Each ``fits_all_points`` probe is answered by the shard's prefix-sum
        ledger; with the compiled kernels on (the default) crowded shards
        evaluate every affected test point in one vectorized pass -- same
        verdicts, so replayed decision traces are byte-identical either way.
        """
        sporadic = task.to_sporadic()
        placed: int | None = None
        # The scan is timed as a whole (one clock pair per admission, not
        # per probe), and annotates the enclosing ``online.admit`` span
        # rather than opening one of its own: per-probe clock reads -- or a
        # span whose extent is essentially the whole admission -- would cost
        # a large fraction of a cheap DBF* probe and break the <= 5%
        # telemetry overhead budget.
        timing = _metrics.enabled
        scan_started = time.perf_counter() if timing else 0.0
        session = self._batch
        hit: int | None = -1
        if session is not None:
            hit = session.first_fit(task.name)
        if session is not None and hit != -1:
            # Batched path: the session's verdict row is bit-identical to
            # the scalar probes below, so taking its lowest True preserves
            # first-fit placement exactly.
            placed = hit
            if placed is not None:
                self._place_low(task, sporadic, placed)
                session.committed(placed)
        else:
            for k, shard in enumerate(self._shards):
                if shard.fits_all_points(sporadic):
                    self._place_low(task, sporadic, k)
                    placed = k
                    break
        # Canonical probe accounting: what a scalar first-fit scan performs,
        # regardless of evaluation strategy.
        probes = len(self._shards) if placed is None else placed + 1
        if timing:
            _metrics.incr("online.placement_probes", probes)
            _metrics.record_time(
                "online.probe_scan_seconds",
                time.perf_counter() - scan_started,
            )
            _metrics.observe("online.probes_per_admission", probes)
        active = _current_span()
        if active is not None:
            active.set(buckets=len(self._shards), probes=probes, bucket=placed)
        if placed is None:
            return self._reject(
                task, LOW_DENSITY, FailureReason.PARTITION_PHASE.value, started
            )
        return self._accept(
            task, LOW_DENSITY, (self._shared[placed],), started,
            detail={"bucket": placed},
        )

    def _place_low(
        self, task: SporadicDAGTask, sporadic: SporadicTask, bucket: int
    ) -> None:
        """Commit a low-density placement into shared bucket *bucket*."""
        entry = _LowEntry(
            task=task, sporadic=sporadic, seq=self._seq, bucket=bucket
        )
        self._buckets[bucket].append(entry)
        shard = self._shards[bucket]
        shard.add(sporadic, entry.seq)
        self._low[task.name] = entry
        self._tasks[task.name] = task
        matrix = self._probe_matrix
        if matrix is not None and not matrix.refresh_column(bucket, shard):
            # The shard outgrew its row padding: rebuild on next batched use.
            self._probe_matrix = None

    def _accept(
        self,
        task: SporadicDAGTask,
        kind: str,
        processors: tuple[int, ...],
        started: float,
        detail: dict | None = None,
    ) -> AdmissionDecision:
        latency = time.perf_counter() - started
        if _metrics.enabled:
            _metrics.incr("online.admit_accepted")
            _metrics.record_time("online.admit_seconds", latency)
        active = _current_span()
        if active is not None:
            active.set(kind=kind, accepted=True, processors=list(processors))
        ctx = current_context()
        if ctx is not None:
            ctx.record(
                Admission(
                    task=task.name,
                    kind=kind,
                    accepted=True,
                    seq=self._seq,
                    processors=processors,
                    detail=detail or {},
                )
            )
        _log.info(
            "ADMIT %s (%s): processors %s", task.name, kind, list(processors)
        )
        return AdmissionDecision(
            accepted=True,
            task_id=task.name,
            kind=kind,
            seq=self._seq,
            processors=processors,
            latency_seconds=latency,
        )

    def _reject(
        self,
        task: SporadicDAGTask,
        kind: str,
        reason: str,
        started: float,
        detail: dict | None = None,
    ) -> AdmissionDecision:
        latency = time.perf_counter() - started
        if _metrics.enabled:
            _metrics.incr("online.admit_rejected")
            _metrics.record_time("online.admit_seconds", latency)
        active = _current_span()
        if active is not None:
            active.set(kind=kind, accepted=False, reason=reason)
        ctx = current_context()
        if ctx is not None:
            ctx.record(
                Admission(
                    task=task.name,
                    kind=kind,
                    accepted=False,
                    seq=self._seq,
                    reason=reason,
                    detail=detail or {},
                )
            )
        _log.info("REJECT %s (%s): %s", task.name, kind, reason)
        return AdmissionDecision(
            accepted=False,
            task_id=task.name,
            kind=kind,
            seq=self._seq,
            reason=reason,
            latency_seconds=latency,
        )

    # ------------------------------------------------------------------
    # departure & reclamation
    # ------------------------------------------------------------------
    def depart(self, task_id: str) -> DepartureReceipt:
        """Process one departure, reclaiming the task's capacity.

        Raises
        ------
        OnlineError
            If *task_id* is not currently admitted.
        """
        started = time.perf_counter()
        # Validate before bumping the sequence counter: a failed request must
        # not mutate state, or a journal replay (which only sees successful
        # events) could never reproduce the counter.
        if task_id not in self._clusters and task_id not in self._low:
            raise OnlineError(f"no admitted task {task_id!r} to depart")
        with _span("online.depart", task=task_id):
            self._seq += 1
            if task_id in self._clusters:
                return self._depart_high(task_id, started)
            return self._depart_low(task_id, started)

    def _depart_high(self, task_id: str, started: float) -> DepartureReceipt:
        cluster = self._clusters.pop(task_id)
        del self._tasks[task_id]
        # Freed processors join the shared pool as new rightmost (empty)
        # buckets: first-fit is prefix-stable, so every existing placement --
        # and hence canonical equivalence -- is untouched, and the very next
        # high-density admit can carve its cluster from this tail.
        for proc in cluster.processors:
            self._shared.append(proc)
            self._buckets.append([])
            self._shards.append(ShardState())
        self._probe_matrix = None
        ctx = current_context()
        if ctx is not None:
            ctx.record(
                Departure(
                    task=task_id,
                    kind=HIGH_DENSITY,
                    seq=self._seq,
                    released=cluster.processors,
                )
            )
            ctx.record(
                Reclamation(
                    source=task_id,
                    processors=cluster.processors,
                    migrations=0,
                    clean=True,
                )
            )
        latency = time.perf_counter() - started
        if _metrics.enabled:
            _metrics.incr("online.departures")
            _metrics.record_time("online.depart_seconds", latency)
        _log.info(
            "DEPART %s (high-density): released processors %s",
            task_id, list(cluster.processors),
        )
        return DepartureReceipt(
            task_id=task_id,
            kind=HIGH_DENSITY,
            seq=self._seq,
            released=cluster.processors,
            latency_seconds=latency,
        )

    def _depart_low(self, task_id: str, started: float) -> DepartureReceipt:
        entry = self._low.pop(task_id)
        del self._tasks[task_id]
        self._buckets[entry.bucket].remove(entry)
        self._shards[entry.bucket].remove(entry.sporadic.name)
        self._probe_matrix = None
        migrations = 0
        clean = True
        if self._repack:
            occupied_before = sum(1 for b in self._buckets if b)
            migrations, clean = self._replay_suffix(entry.seq)
            if clean and _metrics.enabled:
                # Buckets the compaction emptied: capacity consolidated back
                # into whole reusable processors, the quantity EXP-O showed
                # fragmentation was eating.
                freed = occupied_before - sum(1 for b in self._buckets if b)
                _metrics.incr("online.compaction_freed_processors", freed)
            if clean:
                # A clean compaction restores the canonical packing even if a
                # previous pass had been rejected.
                self._restore_canonical_if_complete(entry.seq)
            else:
                self._canonical = False
                if _metrics.enabled:
                    _metrics.incr("online.repack_anomalies")
        else:
            self._canonical = False
        ctx = current_context()
        if ctx is not None:
            ctx.record(
                Departure(
                    task=task_id,
                    kind=LOW_DENSITY,
                    seq=self._seq,
                    migrations=migrations,
                )
            )
            ctx.record(
                Reclamation(
                    source=task_id,
                    processors=(),
                    migrations=migrations,
                    clean=clean,
                )
            )
        latency = time.perf_counter() - started
        if _metrics.enabled:
            _metrics.incr("online.departures")
            _metrics.incr("online.migrations", migrations)
            _metrics.record_time("online.depart_seconds", latency)
        _log.info(
            "DEPART %s (low-density): %d migration(s), %s",
            task_id, migrations, "clean" if clean else "compaction kept old",
        )
        return DepartureReceipt(
            task_id=task_id,
            kind=LOW_DENSITY,
            seq=self._seq,
            migrations=migrations,
            clean=clean,
            latency_seconds=latency,
        )

    def _restore_canonical_if_complete(self, from_seq: int) -> None:
        """A clean suffix replay re-canonicalises iff it covered every task
        that could be out of canonical position.

        After a *rejected* pass at sequence ``s``, tasks admitted before
        ``s`` may sit off-canonically; a later clean replay from a smaller
        sequence covers them.  Conservatively: only a replay from the very
        first low entry (or a state that was already canonical) restores the
        flag -- :meth:`compact` always qualifies.
        """
        if self._canonical:
            return
        first_seq = min(
            (e.seq for e in self._low.values()), default=float("inf")
        )
        if from_seq < first_seq:
            self._canonical = True

    def _replay_suffix(self, after_seq: int) -> tuple[int, bool]:
        """First-fit replay of low entries admitted after *after_seq*.

        Transactional: the replayed assignment replaces the current one only
        if every task places (each individual migration thereby re-proven by
        the same ``DBF*`` test that admitted it); otherwise the pre-replay
        assignment is kept and ``(0, False)`` returned.
        """
        suffix = [e for e in self._low.values() if e.seq > after_seq]
        if not suffix:
            return 0, True
        new_buckets: list[list[_LowEntry]] = [
            [e for e in bucket if e.seq < after_seq]
            for bucket in self._buckets
        ]
        new_shards = [
            ShardState((e.sporadic, e.seq) for e in bucket)
            for bucket in new_buckets
        ]
        placed: list[tuple[_LowEntry, int]] = []
        for entry in suffix:
            for k, shard in enumerate(new_shards):
                if shard.fits_all_points(entry.sporadic):
                    new_buckets[k].append(entry)
                    shard.add(entry.sporadic, entry.seq)
                    placed.append((entry, k))
                    break
            else:
                # First-fit anomaly: the survivors no longer pack under
                # first-fit.  Safety obligation violated -> keep the old
                # (sound) assignment.
                return 0, False
        migrations = sum(1 for entry, k in placed if k != entry.bucket)
        for entry, k in placed:
            entry.bucket = k
        self._buckets = new_buckets
        self._shards = new_shards
        self._probe_matrix = None
        return migrations, True

    def compact(self) -> tuple[int, bool]:
        """Full defragmentation: replay *every* low-density placement.

        Returns ``(migrations, clean)``.  A clean pass leaves the shared pool
        in exactly the canonical (batch re-analysis) packing and restores
        :attr:`canonical`; a rejected pass changes nothing.
        """
        occupied_before = sum(1 for b in self._buckets if b)
        migrations, clean = self._replay_suffix(0)
        if clean:
            if _metrics.enabled:
                freed = occupied_before - sum(1 for b in self._buckets if b)
                _metrics.incr("online.compaction_freed_processors", freed)
            self._canonical = True
        return migrations, clean
