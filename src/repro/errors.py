"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Validation problems with user-supplied
task models raise :class:`ModelError`; algorithmic preconditions that do not
hold raise :class:`AnalysisError`; simulation-time inconsistencies raise
:class:`SimulationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ModelError(ReproError):
    """An invalid task model (cyclic DAG, non-positive WCET, bad deadline...)."""


class CycleError(ModelError):
    """The supplied edge set contains a directed cycle."""


class AnalysisError(ReproError):
    """An analysis routine was invoked outside its domain of validity."""


class ScheduleError(ReproError):
    """A generated or supplied schedule violates a structural invariant."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""


class GenerationError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class OnlineError(ReproError):
    """An online admission-control request was malformed (unknown or
    duplicate task id, unnamed task, bad event trace...)."""


class PersistenceError(OnlineError):
    """Durable controller state (checkpoint, journal, or trace file) is
    corrupt beyond the recoverable torn tail, or its schema version is not
    supported by this build."""


class ServiceError(OnlineError):
    """An admission-service request violates the wire protocol (unparsable
    line, unknown op, missing field), or the server/standby pair detected a
    replication fault (gap in the streamed records, over-acknowledgement,
    promotion of an unverifiable standby)."""
