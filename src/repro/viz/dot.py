"""Graphviz DOT export of task DAGs.

:func:`dag_to_dot` renders the precedence graph of a task with WCET labels;
:func:`task_to_dot` adds the task-level parameters and highlights the
critical path (the chain realising ``len_i``), which is the quantity the
whole analysis pivots on.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.model.dag import DAG
from repro.model.task import SporadicDAGTask

__all__ = ["dag_to_dot", "task_to_dot"]


def _quote(value: object) -> str:
    text = str(value).replace('"', '\\"')
    return f'"{text}"'


def dag_to_dot(dag: DAG, name: str = "dag", highlight_critical: bool = True) -> str:
    """Render *dag* as a Graphviz digraph string.

    Vertices are labelled ``id (wcet)``; with *highlight_critical* the
    longest chain's vertices and edges are drawn bold red.
    """
    if not name.replace("_", "").isalnum():
        raise ReproError(f"DOT graph name must be alphanumeric, got {name!r}")
    critical: set = set()
    critical_edges: set = set()
    if highlight_critical:
        chain = dag.longest_chain()
        critical = set(chain)
        critical_edges = set(zip(chain, chain[1:]))
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    for v in dag.vertices:
        attrs = [f'label="{v} ({dag.wcet(v):g})"']
        if v in critical:
            attrs.append('color="#c00000"')
            attrs.append("penwidth=2")
        lines.append(f"  {_quote(v)} [{', '.join(attrs)}];")
    for u, v in dag.edges:
        attrs = ""
        if (u, v) in critical_edges:
            attrs = ' [color="#c00000", penwidth=2]'
        lines.append(f"  {_quote(u)} -> {_quote(v)}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def task_to_dot(task: SporadicDAGTask, name: str = "task") -> str:
    """Render a task's DAG with a parameter banner.

    The banner records ``vol``, ``len``, ``D``, ``T``, density and the
    high/low-density classification.
    """
    body = dag_to_dot(task.dag, name=name)
    label = (
        f"{task.name or 'task'}: vol={task.volume:g} len={task.span:g} "
        f"D={task.deadline:g} T={task.period:g} "
        f"density={task.density:.3f} "
        f"({'HIGH' if task.is_high_density else 'low'}-density)"
    )
    banner = f'  labelloc="t";\n  label="{label}";'
    head, _, tail = body.partition("\n")
    return f"{head}\n{banner}\n{tail}"
