"""SVG rendering of template schedules and simulation traces.

Dependency-free (plain string assembly) Gantt charts:

* :func:`schedule_to_svg` -- one dag-job's template ``sigma_i`` across its
  cluster, one lane per processor, slots labelled with vertex ids;
* :func:`trace_to_svg` -- a simulation window across the whole platform,
  colour-keyed by task, deadline misses flagged.

These exist so deployments can be inspected visually (the examples and docs
embed them); they carry no scheduling semantics of their own.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import ReproError
from repro.core.schedule import Schedule
from repro.sim.trace import ExecutionRecord, SimulationReport

__all__ = ["schedule_to_svg", "trace_to_svg", "write_svg"]

# A colour-blind-friendly categorical palette (Okabe-Ito).
_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

_LANE_HEIGHT = 28
_LANE_GAP = 6
_LEFT_MARGIN = 64
_TOP_MARGIN = 30
_RIGHT_MARGIN = 20


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _header(width: float, height: float, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" font-family="monospace" font-size="11">',
        f'<text x="{_LEFT_MARGIN}" y="16" font-size="13">{_escape(title)}</text>',
    ]


def _time_axis(
    lines: list[str], t_max: float, scale: float, height: float, ticks: int = 8
) -> None:
    for k in range(ticks + 1):
        t = t_max * k / ticks
        x = _LEFT_MARGIN + t * scale
        lines.append(
            f'<line x1="{x:.1f}" y1="{_TOP_MARGIN}" x2="{x:.1f}" '
            f'y2="{height - 18:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        lines.append(
            f'<text x="{x:.1f}" y="{height - 4:.1f}" text-anchor="middle" '
            f'fill="#555">{t:g}</text>'
        )


def _lane_y(index: int) -> float:
    return _TOP_MARGIN + index * (_LANE_HEIGHT + _LANE_GAP)


def schedule_to_svg(
    schedule: Schedule,
    title: str = "template schedule",
    width: float = 720.0,
    deadline: float | None = None,
) -> str:
    """Render a template :class:`~repro.core.schedule.Schedule` as SVG."""
    if width <= 0:
        raise ReproError(f"width must be positive, got {width}")
    t_max = max(schedule.makespan, deadline or 0.0)
    if t_max <= 0:
        raise ReproError("cannot render an empty schedule")
    scale = (width - _LEFT_MARGIN - _RIGHT_MARGIN) / t_max
    height = _lane_y(schedule.processors) + 24
    lines = _header(width, height, title)
    _time_axis(lines, t_max, scale, height)
    for proc in range(schedule.processors):
        y = _lane_y(proc)
        lines.append(
            f'<text x="4" y="{y + _LANE_HEIGHT / 2 + 4:.1f}" '
            f'fill="#333">P{proc}</text>'
        )
        for i, slot in enumerate(schedule.slots_on(proc)):
            x = _LEFT_MARGIN + slot.start * scale
            w = max(slot.length * scale, 1.0)
            colour = _PALETTE[i % len(_PALETTE)]
            lines.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{_LANE_HEIGHT}" fill="{colour}" fill-opacity="0.75" '
                f'stroke="#333" stroke-width="0.5"/>'
            )
            lines.append(
                f'<text x="{x + w / 2:.1f}" y="{y + _LANE_HEIGHT / 2 + 4:.1f}" '
                f'text-anchor="middle" fill="#000">'
                f"{_escape(str(slot.vertex))}</text>"
            )
    if deadline is not None:
        x = _LEFT_MARGIN + deadline * scale
        lines.append(
            f'<line x1="{x:.1f}" y1="{_TOP_MARGIN - 6}" x2="{x:.1f}" '
            f'y2="{height - 18:.1f}" stroke="#c00" stroke-width="1.5" '
            f'stroke-dasharray="5,3"/>'
        )
        lines.append(
            f'<text x="{x:.1f}" y="{_TOP_MARGIN - 10}" fill="#c00" '
            f'text-anchor="middle">D={deadline:g}</text>'
        )
    lines.append("</svg>")
    return "\n".join(lines)


def trace_to_svg(
    report: SimulationReport,
    processors: int,
    title: str = "execution trace",
    width: float = 960.0,
    window: tuple[float, float] | None = None,
) -> str:
    """Render a simulation window as a platform-wide Gantt chart.

    Parameters
    ----------
    report:
        A report produced with ``record_trace=True`` (it must contain
        execution records).
    processors:
        Platform size (number of lanes).
    window:
        Optional ``(start, end)`` clip; defaults to ``[0, horizon]``.
    """
    if not report.executions:
        raise ReproError(
            "report has no execution records; simulate with record_trace=True"
        )
    lo, hi = window if window is not None else (0.0, report.horizon)
    if hi <= lo:
        raise ReproError(f"empty window ({lo}, {hi})")
    records = [r for r in report.executions if r.end > lo and r.start < hi]
    tasks = sorted({r.task for r in report.executions})
    colour = {t: _PALETTE[i % len(_PALETTE)] for i, t in enumerate(tasks)}
    scale = (width - _LEFT_MARGIN - _RIGHT_MARGIN) / (hi - lo)
    legend_height = 18 * ((len(tasks) + 3) // 4) + 8
    height = _lane_y(processors) + 24 + legend_height
    lines = _header(width, height, title)
    _time_axis(lines, hi - lo, scale, height - legend_height)
    for proc in range(processors):
        y = _lane_y(proc)
        lines.append(
            f'<text x="4" y="{y + _LANE_HEIGHT / 2 + 4:.1f}" '
            f'fill="#333">P{proc}</text>'
        )
    for record in records:
        y = _lane_y(record.processor)
        x = _LEFT_MARGIN + (max(record.start, lo) - lo) * scale
        w = max((min(record.end, hi) - max(record.start, lo)) * scale, 0.5)
        lines.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{_LANE_HEIGHT}" fill="{colour[record.task]}" '
            f'fill-opacity="0.8"><title>{_escape(record.task)} '
            f"{_escape(str(record.vertex))} "
            f"[{record.start:g}, {record.end:g})</title></rect>"
        )
    for miss in report.deadline_misses:
        if lo <= miss.absolute_deadline <= hi:
            x = _LEFT_MARGIN + (miss.absolute_deadline - lo) * scale
            lines.append(
                f'<line x1="{x:.1f}" y1="{_TOP_MARGIN}" x2="{x:.1f}" '
                f'y2="{_lane_y(processors):.1f}" stroke="#c00" '
                f'stroke-width="2"/>'
            )
    # Legend.
    base = _lane_y(processors) + 20
    for i, task in enumerate(tasks):
        x = _LEFT_MARGIN + (i % 4) * 180
        y = base + (i // 4) * 18
        lines.append(
            f'<rect x="{x}" y="{y - 10}" width="12" height="12" '
            f'fill="{colour[task]}"/>'
        )
        lines.append(f'<text x="{x + 16}" y="{y}">{_escape(task)}</text>')
    lines.append("</svg>")
    return "\n".join(lines)


def write_svg(svg: str, path: str | Path) -> None:
    """Write an SVG string to *path* (atomic write)."""
    from repro.io import atomic_write_text

    atomic_write_text(path, svg)
