"""Presentation helpers: SVG Gantt charts and Graphviz DOT export."""

from repro.viz.dag_svg import dag_to_svg
from repro.viz.dot import dag_to_dot, task_to_dot
from repro.viz.svg import schedule_to_svg, trace_to_svg, write_svg

__all__ = [
    "schedule_to_svg",
    "trace_to_svg",
    "write_svg",
    "dag_to_dot",
    "dag_to_svg",
    "task_to_dot",
]
