"""Layered node-link SVG rendering of task DAGs.

A dependency-free structural drawing: vertices are placed in columns by
longest-path depth (so every edge points rightward), rows within a column
follow the topological order, and the critical path is highlighted.  For
publication-quality layouts use :mod:`repro.viz.dot` with Graphviz; this
renderer exists so the library can show a DAG with no external tooling.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.model.dag import DAG, VertexId

__all__ = ["dag_to_svg"]

_NODE_R = 16
_COL_GAP = 110
_ROW_GAP = 60
_MARGIN = 40


def _depths(dag: DAG) -> dict[VertexId, int]:
    depth: dict[VertexId, int] = {}
    for v in dag.vertices:
        depth[v] = max((depth[p] + 1 for p in dag.predecessors(v)), default=0)
    return depth


def dag_to_svg(
    dag: DAG, title: str = "", highlight_critical: bool = True
) -> str:
    """Render *dag* as a layered SVG node-link diagram.

    Raises
    ------
    ReproError
        Never for valid DAGs; kept for symmetry with the other renderers.
    """
    if len(dag) == 0:  # pragma: no cover - DAG guarantees >= 1 vertex
        raise ReproError("cannot render an empty DAG")
    depth = _depths(dag)
    columns: dict[int, list[VertexId]] = {}
    for v in dag.vertices:  # topological order fixes row order
        columns.setdefault(depth[v], []).append(v)
    n_cols = max(columns) + 1
    n_rows = max(len(col) for col in columns.values())
    width = 2 * _MARGIN + (n_cols - 1) * _COL_GAP + 2 * _NODE_R
    height = 2 * _MARGIN + (n_rows - 1) * _ROW_GAP + 2 * _NODE_R + (30 if title else 0)

    position: dict[VertexId, tuple[float, float]] = {}
    for col_index, members in columns.items():
        x = _MARGIN + _NODE_R + col_index * _COL_GAP
        offset = (n_rows - len(members)) * _ROW_GAP / 2.0
        for row_index, v in enumerate(members):
            y = _MARGIN + _NODE_R + offset + row_index * _ROW_GAP + (30 if title else 0)
            position[v] = (x, y)

    critical: set[VertexId] = set()
    critical_edges: set[tuple[VertexId, VertexId]] = set()
    if highlight_critical:
        chain = dag.longest_chain()
        critical = set(chain)
        critical_edges = set(zip(chain, chain[1:]))

    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">'
    ]
    if title:
        lines.append(f'<text x="{_MARGIN}" y="20" font-size="13">{title}</text>')
    lines.append(
        '<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="6" markerHeight="6" orient="auto-start-reverse">'
        '<path d="M 0 0 L 10 5 L 0 10 z" fill="#666"/></marker></defs>'
    )
    for u, v in dag.edges:
        (x1, y1), (x2, y2) = position[u], position[v]
        dx, dy = x2 - x1, y2 - y1
        norm = max((dx * dx + dy * dy) ** 0.5, 1e-9)
        sx, sy = x1 + dx / norm * _NODE_R, y1 + dy / norm * _NODE_R
        ex, ey = x2 - dx / norm * (_NODE_R + 4), y2 - dy / norm * (_NODE_R + 4)
        colour = "#c00000" if (u, v) in critical_edges else "#666"
        stroke = 2.2 if (u, v) in critical_edges else 1.2
        lines.append(
            f'<line x1="{sx:.1f}" y1="{sy:.1f}" x2="{ex:.1f}" y2="{ey:.1f}" '
            f'stroke="{colour}" stroke-width="{stroke}" '
            'marker-end="url(#arrow)"/>'
        )
    for v in dag.vertices:
        x, y = position[v]
        edge_colour = "#c00000" if v in critical else "#333"
        stroke = 2.5 if v in critical else 1.2
        lines.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{_NODE_R}" fill="#f4f4f8" '
            f'stroke="{edge_colour}" stroke-width="{stroke}"/>'
        )
        lines.append(
            f'<text x="{x:.1f}" y="{y + 3:.1f}" text-anchor="middle">{v}</text>'
        )
        lines.append(
            f'<text x="{x:.1f}" y="{y + _NODE_R + 12:.1f}" '
            f'text-anchor="middle" fill="#555">{dag.wcet(v):g}</text>'
        )
    lines.append("</svg>")
    return "\n".join(lines)
