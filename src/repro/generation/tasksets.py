"""Random task-system generation for the schedulability experiments.

The recipe (following Li et al. ECRTS'14 and the common practice of the
sporadic-DAG literature, since the paper does not specify its generator):

1. draw per-task utilizations ``u_1..u_n`` summing to the target
   ``U_sum = normalized_utilization * m`` with UUniFast;
2. generate each task's DAG structure (Erdos-Renyi / layered / nested
   fork-join / series-parallel, or any other family of the
   :mod:`~repro.generation.families` workload zoo -- Pegasus scientific
   workflows, elementary shapes, imported DAX graphs) and integer WCETs,
   giving ``vol_i`` and ``len_i``;
3. set ``T_i = vol_i / u_i``.  If the draw demands more parallelism than the
   DAG has (``u_i > vol_i / len_i``, i.e. ``T_i < len_i``), the DAG is
   resampled a few times, then ``u_i`` is clamped to the DAG's maximum
   sustainable utilization -- experiments always report the *achieved*
   utilization, so clamping cannot bias acceptance ratios;
4. set ``D_i = len_i + x * (T_i - len_i)`` with ``x`` uniform in the
   configured deadline-ratio range.  Small ``x`` yields tight deadlines and
   (when ``D_i <= vol_i``) high-density tasks; ``x = 1`` recovers implicit
   deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import GenerationError
from repro.generation.dag_generators import (
    erdos_renyi_dag,
    layered_dag,
    nested_fork_join_sized,
    random_composition,
    series_parallel,
)
from repro.generation.families import family_names, get_family
from repro.generation.parameters import (
    constrained_deadline,
    randfixedsum,
    uniform_wcet_sampler,
    uunifast,
)
from repro.model.dag import DAG
from repro.model.task import SporadicDAGTask
from repro.model.taskset import TaskSystem

__all__ = ["SystemConfig", "generate_dag", "generate_task", "generate_system"]

_RESAMPLE_LIMIT = 20


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of the task-system generator (defaults match EXP-A)."""

    tasks: int = 10
    processors: int = 8
    normalized_utilization: float = 0.5  # U_sum / m
    dag_kind: str = "erdos_renyi"
    min_vertices: int = 10
    max_vertices: int = 30
    edge_probability: float = 0.2
    wcet_low: int = 1
    wcet_high: int = 100
    deadline_ratio: tuple[float, float] = (0.05, 1.0)
    nfj_depth: int = 3
    nfj_max_branches: int = 4
    layers: int = 5
    layer_width: int = 6
    utilization_method: str = "uunifast"  # or "randfixedsum"

    def __post_init__(self) -> None:
        if self.utilization_method not in ("uunifast", "randfixedsum"):
            raise GenerationError(
                "utilization_method must be 'uunifast' or 'randfixedsum', "
                f"got {self.utilization_method!r}"
            )
        if self.tasks < 1:
            raise GenerationError(f"tasks must be >= 1, got {self.tasks}")
        if self.processors < 1:
            raise GenerationError(f"processors must be >= 1, got {self.processors}")
        if self.normalized_utilization <= 0:
            raise GenerationError(
                "normalized_utilization must be positive, got "
                f"{self.normalized_utilization}"
            )
        if self.dag_kind not in family_names():
            raise GenerationError(
                f"dag_kind must be a registered family, one of "
                f"{family_names()}; got {self.dag_kind!r}"
            )
        if not 1 <= self.min_vertices <= self.max_vertices:
            raise GenerationError("need 1 <= min_vertices <= max_vertices")
        if self.dag_kind == "layered":
            if self.layers < 1 or self.layer_width < 1:
                raise GenerationError("layers and layer_width must be >= 1")
            lo = max(self.min_vertices, self.layers)
            hi = min(self.max_vertices, self.layers * self.layer_width)
            if lo > hi:
                raise GenerationError(
                    f"layered config is contradictory: {self.layers} layers "
                    f"of 1..{self.layer_width} vertices can only produce "
                    f"{self.layers}..{self.layers * self.layer_width} "
                    f"vertices, outside min/max_vertices "
                    f"({self.min_vertices}, {self.max_vertices})"
                )
        if self.dag_kind == "nested_fork_join" and (
            self.nfj_depth < 0 or self.nfj_max_branches < 2
        ):
            raise GenerationError(
                "need nfj_depth >= 0 and nfj_max_branches >= 2"
            )

    def with_utilization(self, normalized: float) -> "SystemConfig":
        """A copy at a different normalized utilization (sweep helper)."""
        return replace(self, normalized_utilization=normalized)


def generate_dag(config: SystemConfig, rng: np.random.Generator) -> DAG:
    """One random DAG structure according to *config*.

    The four random kinds are dispatched inline so the structural knobs of
    :class:`SystemConfig` (edge probability, layer and fork-join settings)
    apply; any other ``dag_kind`` resolves through the
    :mod:`~repro.generation.families` registry.  Every path honours
    ``min_vertices``/``max_vertices`` (fixed-size DAX families excepted):
    the vertex count is drawn first and the structure built to match, and
    contradictory configurations raise :class:`GenerationError` instead of
    silently ignoring the bounds.
    """
    sampler = uniform_wcet_sampler(config.wcet_low, config.wcet_high)
    if config.dag_kind == "erdos_renyi":
        n = int(rng.integers(config.min_vertices, config.max_vertices + 1))
        return erdos_renyi_dag(n, config.edge_probability, rng, sampler)
    if config.dag_kind == "layered":
        lo = max(config.min_vertices, config.layers)
        hi = min(config.max_vertices, config.layers * config.layer_width)
        n = int(rng.integers(lo, hi + 1))
        sizes = random_composition(n, config.layers, config.layer_width, rng)
        return layered_dag(
            config.layers, config.layer_width, config.edge_probability,
            rng, sampler, layer_sizes=sizes,
        )
    if config.dag_kind == "nested_fork_join":
        n = int(rng.integers(config.min_vertices, config.max_vertices + 1))
        return nested_fork_join_sized(
            n, config.nfj_depth, config.nfj_max_branches, rng, sampler
        )
    if config.dag_kind == "series_parallel":
        n = int(rng.integers(config.min_vertices, config.max_vertices + 1))
        return series_parallel(n, rng, sampler, exact=True)
    family = get_family(config.dag_kind)
    return family.builder(
        config.min_vertices, config.max_vertices, rng, sampler
    )


def generate_task(
    utilization: float,
    config: SystemConfig,
    rng: np.random.Generator,
    name: str = "",
) -> SporadicDAGTask:
    """One random task with (approximately) the given *utilization*.

    The utilization is achieved exactly unless it exceeds the parallelism of
    every resampled DAG (``u > vol / len``), in which case it is clamped to
    the last DAG's maximum; callers measure achieved utilization from the
    returned system.
    """
    if utilization <= 0:
        raise GenerationError(f"utilization must be positive, got {utilization}")
    dag = generate_dag(config, rng)
    for _ in range(_RESAMPLE_LIMIT):
        if utilization <= dag.volume / dag.longest_chain_length:
            break
        dag = generate_dag(config, rng)
    achieved = min(utilization, dag.volume / dag.longest_chain_length)
    # Guard against float round-down when the clamp is active (vol / (vol /
    # len) can land a hair below len).
    period = max(dag.volume / achieved, dag.longest_chain_length)
    deadline = constrained_deadline(
        dag.longest_chain_length, period, rng, config.deadline_ratio
    )
    return SporadicDAGTask(dag=dag, deadline=deadline, period=period, name=name)


def generate_system(
    config: SystemConfig, rng: np.random.Generator | int | None = None
) -> TaskSystem:
    """One random constrained-deadline sporadic DAG task system."""
    if rng is None or isinstance(rng, int):
        rng = np.random.default_rng(rng)
    total = config.normalized_utilization * config.processors
    if config.utilization_method == "randfixedsum":
        draws = randfixedsum(config.tasks, total, rng)
    else:
        draws = uunifast(config.tasks, total, rng)
    # Guard against floating-point zeros from extreme draws.
    utilizations = [max(u, 1e-9) for u in draws]
    tasks = [
        generate_task(u, config, rng, name=f"task{i}")
        for i, u in enumerate(utilizations)
    ]
    return TaskSystem(tasks)
