"""Workload generation: DAG structures, parameters, full task systems, the
adversarial Chen lower-bound gadget family, and the workload zoo (Pegasus
scientific workflows, elementary shapes, DAX import) behind one family
registry."""

from repro.generation.adversarial import (
    HARDNESS_GRADES,
    GadgetInstance,
    chen_gadget,
    hardness_dial,
)
from repro.generation.dag_generators import (
    erdos_renyi_dag,
    layered_dag,
    nested_fork_join,
    nested_fork_join_sized,
    random_composition,
    series_parallel,
)
from repro.generation.dax import (
    dax_fixture_path,
    dump_dax,
    load_dax,
    write_dax,
)
from repro.generation.elementary import (
    bigmerge,
    conflux,
    fork_join,
    grid,
    map_reduce,
    splitters,
    stairs,
)
from repro.generation.families import (
    Family,
    build_family_dag,
    family_names,
    get_family,
    register_dax_family,
    register_family,
)
from repro.generation.parameters import (
    constrained_deadline,
    loguniform,
    loguniform_wcet_sampler,
    period_for_utilization,
    randfixedsum,
    uniform_wcet_sampler,
    uunifast,
)
from repro.generation.pegasus import (
    cybershake,
    epigenomics,
    ligo,
    montage,
    sipht,
)
from repro.generation.tasksets import (
    SystemConfig,
    generate_dag,
    generate_system,
    generate_task,
)
from repro.generation.traces import TraceConfig, generate_trace

__all__ = [
    "HARDNESS_GRADES",
    "GadgetInstance",
    "chen_gadget",
    "hardness_dial",
    "erdos_renyi_dag",
    "layered_dag",
    "nested_fork_join",
    "nested_fork_join_sized",
    "random_composition",
    "series_parallel",
    "dax_fixture_path",
    "dump_dax",
    "load_dax",
    "write_dax",
    "bigmerge",
    "conflux",
    "fork_join",
    "grid",
    "map_reduce",
    "splitters",
    "stairs",
    "Family",
    "build_family_dag",
    "family_names",
    "get_family",
    "register_dax_family",
    "register_family",
    "cybershake",
    "epigenomics",
    "ligo",
    "montage",
    "sipht",
    "uunifast",
    "randfixedsum",
    "loguniform",
    "uniform_wcet_sampler",
    "loguniform_wcet_sampler",
    "period_for_utilization",
    "constrained_deadline",
    "SystemConfig",
    "generate_dag",
    "generate_task",
    "generate_system",
    "TraceConfig",
    "generate_trace",
]
