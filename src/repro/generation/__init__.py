"""Workload generation: DAG structures, parameters, full task systems, and
the adversarial Chen lower-bound gadget family."""

from repro.generation.adversarial import (
    HARDNESS_GRADES,
    GadgetInstance,
    chen_gadget,
    hardness_dial,
)
from repro.generation.dag_generators import (
    erdos_renyi_dag,
    layered_dag,
    nested_fork_join,
    series_parallel,
)
from repro.generation.parameters import (
    constrained_deadline,
    loguniform,
    loguniform_wcet_sampler,
    period_for_utilization,
    randfixedsum,
    uniform_wcet_sampler,
    uunifast,
)
from repro.generation.tasksets import (
    SystemConfig,
    generate_dag,
    generate_system,
    generate_task,
)
from repro.generation.traces import TraceConfig, generate_trace

__all__ = [
    "HARDNESS_GRADES",
    "GadgetInstance",
    "chen_gadget",
    "hardness_dial",
    "erdos_renyi_dag",
    "layered_dag",
    "nested_fork_join",
    "series_parallel",
    "uunifast",
    "randfixedsum",
    "loguniform",
    "uniform_wcet_sampler",
    "loguniform_wcet_sampler",
    "period_for_utilization",
    "constrained_deadline",
    "SystemConfig",
    "generate_dag",
    "generate_task",
    "generate_system",
    "TraceConfig",
    "generate_trace",
]
