"""Pegasus scientific-workflow families as parameterized DAG generators.

The five named workflows of the Pegasus characterization literature
(Bharathi et al., "Characterization of Scientific Workflows", WORKS 2008)
are the de-facto structured benchmark set for DAG scheduling -- estee's
``schedsim.generators.pegasus`` (SNIPPETS.md snippet 1) ships the same five.
Each generator here reproduces the *shape* of one workflow -- which jobs
exist, which fan in/out, where the synchronisation bottlenecks sit -- as a
function of one width parameter, while WCETs are drawn from the supplied
sampler and scaled by a per-role weight so the characteristic heterogeneity
(e.g. mAdd dwarfing mProjectPP) survives:

:func:`montage`
    astronomy mosaics: wide projection layer, pairwise difference fits, a
    background-model bottleneck, then a second wide correction layer
    funnelling into the final image chain;
:func:`cybershake`
    seismic hazard: two extraction roots feeding every synthesis job, with
    two independent gather sinks (zip and peak-value chains);
:func:`epigenomics`
    genome sequencing: one splitter fanning out to parallel four-stage
    filter pipelines that merge back into a sequential tail;
:func:`ligo`
    gravitational-wave inspiral: independent analysis groups, each a
    template-bank layer, a coincidence bottleneck, and a second bank layer
    with its own coincidence test (the graph is intentionally a forest);
:func:`sipht`
    sRNA annotation: a wide Patser scan plus a handful of independent
    search jobs all feeding one SRNA hub, whose products are re-blasted and
    annotated.

All generators take a ``numpy.random.Generator`` and a WCET sampler, use
stable readable string vertex ids, and return validated
:class:`~repro.model.dag.DAG` instances, so equal ``(family, parameters,
seed)`` triples produce byte-identical :meth:`~repro.model.dag.DAG.digest`
values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.generation.dag_generators import WcetSampler, _default_wcet
from repro.model.dag import DAG

__all__ = ["cybershake", "epigenomics", "ligo", "montage", "sipht"]


class _Builder:
    """Accumulates weighted jobs and edges, then freezes into a DAG.

    The per-role *weights* multiply the sampler draw, preserving the
    workflow's characteristic heterogeneity whatever base sampler is used.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        wcet_sampler: WcetSampler,
        weights: dict[str, float],
    ) -> None:
        self._rng = rng
        self._sampler = wcet_sampler
        self._weights = weights
        self.wcets: dict[str, float] = {}
        self.edges: list[tuple[str, str]] = []

    def job(self, role: str, index: int | None = None) -> str:
        name = role if index is None else f"{role}{index:02d}"
        self.wcets[name] = self._weights.get(role, 1.0) * self._sampler(
            self._rng
        )
        return name

    def edge(self, src: str, dst: str) -> None:
        self.edges.append((src, dst))

    def dag(self) -> DAG:
        return DAG(self.wcets, self.edges)


def montage(
    projections: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Montage mosaic workflow: ``3 * projections + 5`` vertices.

    ``projections`` mProjectPP jobs; an mDiffFit job per adjacent pair; one
    mConcatFit -> mBgModel bottleneck; an mBackground job per projection
    (reading both the model and its projection); then the sequential
    mImgTbl -> mAdd -> mShrink -> mJPEG tail.  Single sink, wide entry.
    """
    if projections < 2:
        raise GenerationError(
            f"montage needs >= 2 projections, got {projections}"
        )
    b = _Builder(rng, wcet_sampler, {
        "mProjectPP": 1.0, "mDiffFit": 0.5, "mConcatFit": 1.5,
        "mBgModel": 2.0, "mBackground": 0.5, "mImgTbl": 0.5,
        "mAdd": 3.0, "mShrink": 1.0, "mJPEG": 0.5,
    })
    projs = [b.job("mProjectPP", i) for i in range(projections)]
    concat = b.job("mConcatFit")
    for i in range(projections - 1):
        diff = b.job("mDiffFit", i)
        b.edge(projs[i], diff)
        b.edge(projs[i + 1], diff)
        b.edge(diff, concat)
    model = b.job("mBgModel")
    b.edge(concat, model)
    table = b.job("mImgTbl")
    for i, proj in enumerate(projs):
        background = b.job("mBackground", i)
        b.edge(model, background)
        b.edge(proj, background)
        b.edge(background, table)
    add = b.job("mAdd")
    shrink = b.job("mShrink")
    jpeg = b.job("mJPEG")
    b.edge(table, add)
    b.edge(add, shrink)
    b.edge(shrink, jpeg)
    return b.dag()


def cybershake(
    synthesis: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """CyberShake hazard workflow: ``2 * synthesis + 4`` vertices.

    Two ExtractSGT roots both feed every SeismogramSynthesis job; a ZipSeis
    job gathers all seismograms while a PeakValCalcOkaya job per synthesis
    feeds the second gather, ZipPSA.  Two sources, two sinks.
    """
    if synthesis < 2:
        raise GenerationError(
            f"cybershake needs >= 2 synthesis jobs, got {synthesis}"
        )
    b = _Builder(rng, wcet_sampler, {
        "ExtractSGT": 2.0, "SeismogramSynthesis": 1.0,
        "ZipSeis": 0.5, "PeakValCalcOkaya": 0.25, "ZipPSA": 0.5,
    })
    extracts = [b.job("ExtractSGT", i) for i in range(2)]
    zip_seis = b.job("ZipSeis")
    zip_psa = b.job("ZipPSA")
    for i in range(synthesis):
        synth = b.job("SeismogramSynthesis", i)
        for extract in extracts:
            b.edge(extract, synth)
        b.edge(synth, zip_seis)
        peak = b.job("PeakValCalcOkaya", i)
        b.edge(synth, peak)
        b.edge(peak, zip_psa)
    return b.dag()


def epigenomics(
    lanes: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Epigenomics sequencing workflow: ``4 * lanes + 4`` vertices.

    One fastQSplit fans out to *lanes* parallel four-stage pipelines
    (filterContams -> sol2sanger -> fastq2bfq -> map) that merge into the
    sequential mapMerge -> maqIndex -> pileup tail.  Single source and sink.
    """
    if lanes < 2:
        raise GenerationError(f"epigenomics needs >= 2 lanes, got {lanes}")
    b = _Builder(rng, wcet_sampler, {
        "fastQSplit": 1.0, "filterContams": 0.5, "sol2sanger": 0.5,
        "fastq2bfq": 0.5, "map": 4.0, "mapMerge": 1.0,
        "maqIndex": 0.5, "pileup": 1.0,
    })
    split = b.job("fastQSplit")
    merge = b.job("mapMerge")
    for i in range(lanes):
        prev = split
        for role in ("filterContams", "sol2sanger", "fastq2bfq", "map"):
            stage = b.job(role, i)
            b.edge(prev, stage)
            prev = stage
        b.edge(prev, merge)
    index = b.job("maqIndex")
    pileup = b.job("pileup")
    b.edge(merge, index)
    b.edge(index, pileup)
    return b.dag()


def ligo(
    groups: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
    bank_size: int = 3,
) -> DAG:
    """LIGO inspiral workflow: ``groups * (4 * bank_size + 2)`` vertices.

    Each group runs *bank_size* TmpltBank -> Inspiral pairs into a Thinca
    coincidence test, whose output seeds *bank_size* TrigBank -> Inspiral2
    pairs into a second Thinca.  Groups are mutually independent, so the
    graph is a forest of ``groups`` identical components (``groups *
    bank_size`` sources, ``groups`` sinks).
    """
    if groups < 1:
        raise GenerationError(f"ligo needs >= 1 group, got {groups}")
    if bank_size < 1:
        raise GenerationError(f"ligo needs bank_size >= 1, got {bank_size}")
    b = _Builder(rng, wcet_sampler, {
        "TmpltBank": 1.0, "Inspiral": 4.0, "Thinca": 0.25,
        "TrigBank": 0.5, "Inspiral2": 4.0, "Thinca2": 0.25,
    })
    for g in range(groups):
        base = g * bank_size
        thinca = b.job("Thinca", g)
        for k in range(bank_size):
            bank = b.job("TmpltBank", base + k)
            inspiral = b.job("Inspiral", base + k)
            b.edge(bank, inspiral)
            b.edge(inspiral, thinca)
        thinca2 = b.job("Thinca2", g)
        for k in range(bank_size):
            trig = b.job("TrigBank", base + k)
            inspiral2 = b.job("Inspiral2", base + k)
            b.edge(thinca, trig)
            b.edge(trig, inspiral2)
            b.edge(inspiral2, thinca2)
    return b.dag()


def sipht(
    patser_jobs: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """SIPHT sRNA-annotation workflow: ``patser_jobs + 10`` vertices.

    A wide Patser scan concatenated by PatserConcat, plus four independent
    search jobs (Transterm, Findterm, RNAMotif, BlastCandidate), all feed
    the central SRNA hub; SRNA's products run FFN_Parse and two further
    Blast variants, gathered by the SRNA_Annotate sink.
    """
    if patser_jobs < 2:
        raise GenerationError(
            f"sipht needs >= 2 patser jobs, got {patser_jobs}"
        )
    b = _Builder(rng, wcet_sampler, {
        "Patser": 0.25, "PatserConcat": 0.25, "Transterm": 2.0,
        "Findterm": 3.0, "RNAMotif": 1.0, "BlastCandidate": 2.0,
        "SRNA": 1.0, "FFN_Parse": 0.5, "BlastSynteny": 1.5,
        "BlastParalog": 1.5, "SRNA_Annotate": 0.5,
    })
    concat = b.job("PatserConcat")
    for i in range(patser_jobs):
        patser = b.job("Patser", i)
        b.edge(patser, concat)
    srna = b.job("SRNA")
    b.edge(concat, srna)
    for role in ("Transterm", "Findterm", "RNAMotif", "BlastCandidate"):
        b.edge(b.job(role), srna)
    annotate = b.job("SRNA_Annotate")
    for role in ("FFN_Parse", "BlastSynteny", "BlastParalog"):
        product = b.job(role)
        b.edge(srna, product)
        b.edge(product, annotate)
    return b.dag()
