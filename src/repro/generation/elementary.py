"""Elementary DAG shapes: the canonical small structures of the workload zoo.

Scheduling results on random graphs hide *why* a policy wins or loses; the
elementary families isolate one structural trait each (after estee's
``schedsim.generators.elementary``, SNIPPETS.md snippet 1), so sweeping them
exposes exactly which trait an analysis is sensitive to:

:func:`fork_join`
    one fork, ``branches`` parallel jobs, one join -- maximal middle-layer
    parallelism, the canonical parallel-for;
:func:`map_reduce`
    a complete bipartite map -> reduce exchange -- all-to-all precedence,
    the densest edge structure per vertex;
:func:`grid`
    a ``rows x cols`` lattice where job ``(i, j)`` precedes ``(i+1, j)`` and
    ``(i, j+1)`` -- pipelined wavefront parallelism (stencils, dynamic
    programming);
:func:`stairs`
    a fully sequential chain whose WCETs climb linearly -- zero parallelism
    with a strongly skewed load (the "duration stairs");
:func:`bigmerge`
    ``inputs`` independent jobs all feeding one sink -- embarrassing
    parallelism with a single synchronisation point;
:func:`splitters`
    a complete binary out-tree of the given depth -- parallelism that
    *grows* over time;
:func:`conflux`
    a complete binary in-tree -- parallelism that *shrinks* over time (the
    mirror image of :func:`splitters`).

Every generator takes a ``numpy.random.Generator`` plus a WCET sampler,
labels vertices with stable readable string ids (``"map03"``,
``"grid_2_4"``), and returns a validated :class:`~repro.model.dag.DAG` --
so the same ``(family, parameters, seed)`` triple always yields a
byte-identical :meth:`~repro.model.dag.DAG.digest`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.generation.dag_generators import WcetSampler, _default_wcet
from repro.model.dag import DAG

__all__ = [
    "bigmerge",
    "conflux",
    "fork_join",
    "grid",
    "map_reduce",
    "splitters",
    "stairs",
]


def fork_join(
    branches: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Fork, *branches* parallel jobs, join: ``branches + 2`` vertices."""
    if branches < 1:
        raise GenerationError(f"branches must be >= 1, got {branches}")
    wcets = {"fork": wcet_sampler(rng)}
    edges = []
    for i in range(branches):
        name = f"branch{i:02d}"
        wcets[name] = wcet_sampler(rng)
        edges.append(("fork", name))
    wcets["join"] = wcet_sampler(rng)
    edges.extend((f"branch{i:02d}", "join") for i in range(branches))
    return DAG(wcets, edges)


def map_reduce(
    mappers: int,
    reducers: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Complete bipartite map -> reduce: ``mappers + reducers`` vertices."""
    if mappers < 1 or reducers < 1:
        raise GenerationError(
            f"need mappers >= 1 and reducers >= 1, got ({mappers}, {reducers})"
        )
    wcets = {f"map{i:02d}": wcet_sampler(rng) for i in range(mappers)}
    for j in range(reducers):
        wcets[f"reduce{j:02d}"] = wcet_sampler(rng)
    edges = [
        (f"map{i:02d}", f"reduce{j:02d}")
        for i in range(mappers)
        for j in range(reducers)
    ]
    return DAG(wcets, edges)


def grid(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """``rows x cols`` lattice: ``(i, j)`` precedes ``(i+1, j)``/``(i, j+1)``."""
    if rows < 1 or cols < 1:
        raise GenerationError(
            f"need rows >= 1 and cols >= 1, got ({rows}, {cols})"
        )
    wcets = {
        f"grid_{i}_{j}": wcet_sampler(rng)
        for i in range(rows)
        for j in range(cols)
    }
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                edges.append((f"grid_{i}_{j}", f"grid_{i + 1}_{j}"))
            if j + 1 < cols:
                edges.append((f"grid_{i}_{j}", f"grid_{i}_{j + 1}"))
    return DAG(wcets, edges)


def stairs(
    steps: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Sequential chain of *steps* jobs with linearly growing WCETs.

    Job ``k`` draws from the sampler and scales by ``k + 1``, so the load is
    strongly back-heavy while the structure is a pure critical path
    (``vol == len``): the zero-parallelism extreme of the zoo.
    """
    if steps < 1:
        raise GenerationError(f"steps must be >= 1, got {steps}")
    wcets = {
        f"step{k:03d}": (k + 1) * wcet_sampler(rng) for k in range(steps)
    }
    edges = [
        (f"step{k:03d}", f"step{k + 1:03d}") for k in range(steps - 1)
    ]
    return DAG(wcets, edges)


def bigmerge(
    inputs: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """*inputs* independent jobs all merging into one sink: ``inputs + 1``."""
    if inputs < 1:
        raise GenerationError(f"inputs must be >= 1, got {inputs}")
    wcets = {f"in{i:03d}": wcet_sampler(rng) for i in range(inputs)}
    wcets["merge"] = wcet_sampler(rng)
    edges = [(f"in{i:03d}", "merge") for i in range(inputs)]
    return DAG(wcets, edges)


def _binary_tree(
    depth: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler,
    prefix: str,
    out_tree: bool,
) -> DAG:
    """Complete binary tree of *depth* levels below the root."""
    if depth < 0:
        raise GenerationError(f"depth must be >= 0, got {depth}")
    wcets: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    for level in range(depth + 1):
        for k in range(2 ** level):
            wcets[f"{prefix}_{level}_{k}"] = wcet_sampler(rng)
    for level in range(depth):
        for k in range(2 ** level):
            parent = f"{prefix}_{level}_{k}"
            for child in (2 * k, 2 * k + 1):
                node = f"{prefix}_{level + 1}_{child}"
                edges.append((parent, node) if out_tree else (node, parent))
    return DAG(wcets, edges)


def splitters(
    depth: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Binary out-tree: one root fanning out to ``2**depth`` leaves.

    ``2**(depth + 1) - 1`` vertices; parallelism doubles level by level.
    """
    return _binary_tree(depth, rng, wcet_sampler, "split", out_tree=True)


def conflux(
    depth: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Binary in-tree: ``2**depth`` sources merging down to one sink.

    ``2**(depth + 1) - 1`` vertices; parallelism halves level by level.
    """
    return _binary_tree(depth, rng, wcet_sampler, "merge", out_tree=False)
