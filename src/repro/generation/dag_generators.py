"""Random DAG structure generators.

The paper's experiments use "randomly-generated task systems" without
specifying the generator, noting that results "are necessarily deeply
influenced by the manner in which we generate our task systems".  We
implement the three standard generators of the sporadic-DAG literature so
EXP-D can sweep across them:

:func:`erdos_renyi_dag`
    the ordered-pair G(n, p) method (edge ``i -> j`` for ``i < j`` with
    probability ``p``) used by e.g. Cordeiro et al. and most DAG-scheduling
    evaluations;
:func:`layered_dag`
    layer-by-layer construction with forward edges only between consecutive
    layers -- produces wide, shallow graphs typical of signal-processing
    pipelines;
:func:`nested_fork_join`
    recursive fork-join nesting, the structure produced by parallel-for /
    spawn-sync programming models (Saifullah et al., RTSS 2011);
:func:`series_parallel`
    random series/parallel composition, a superset of fork-join shapes.

All generators take an explicit ``numpy.random.Generator`` and a WCET
sampler, and return a validated :class:`~repro.model.dag.DAG`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import GenerationError
from repro.model.dag import DAG

__all__ = [
    "WcetSampler",
    "erdos_renyi_dag",
    "layered_dag",
    "nested_fork_join",
    "nested_fork_join_sized",
    "random_composition",
    "series_parallel",
]

WcetSampler = Callable[[np.random.Generator], float]


def _default_wcet(rng: np.random.Generator) -> float:
    return float(rng.integers(1, 101))


def random_composition(
    total: int,
    parts: int,
    cap: int | None,
    rng: np.random.Generator,
) -> list[int]:
    """Split *total* into *parts* positive integers, each at most *cap*.

    Every part starts at 1 and the remaining units are scattered uniformly
    over the parts that still have headroom, so the composition is random
    but always exact.  Used to hit requested vertex counts with layered /
    grouped generators.

    Raises
    ------
    GenerationError
        If the composition is impossible (``total < parts`` or
        ``total > parts * cap``).
    """
    if parts < 1:
        raise GenerationError(f"parts must be >= 1, got {parts}")
    if total < parts:
        raise GenerationError(
            f"cannot split {total} vertices into {parts} non-empty parts"
        )
    if cap is not None and total > parts * cap:
        raise GenerationError(
            f"cannot split {total} vertices into {parts} parts of at most "
            f"{cap}"
        )
    sizes = [1] * parts
    for _ in range(total - parts):
        eligible = [
            i for i in range(parts) if cap is None or sizes[i] < cap
        ]
        sizes[eligible[int(rng.integers(0, len(eligible)))]] += 1
    return sizes


def erdos_renyi_dag(
    vertices: int,
    edge_probability: float,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Ordered G(n, p): edge ``i -> j`` (``i < j``) with probability *p*.

    Raises
    ------
    GenerationError
        If *vertices* < 1 or *edge_probability* is outside ``[0, 1]``.
    """
    if vertices < 1:
        raise GenerationError(f"need at least one vertex, got {vertices}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GenerationError(
            f"edge probability must be in [0, 1], got {edge_probability}"
        )
    wcets = {i: wcet_sampler(rng) for i in range(vertices)}
    edges = [
        (i, j)
        for i in range(vertices)
        for j in range(i + 1, vertices)
        if rng.random() < edge_probability
    ]
    return DAG(wcets, edges)


def layered_dag(
    layers: int,
    width: int,
    edge_probability: float,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
    layer_sizes: Sequence[int] | None = None,
) -> DAG:
    """Layered DAG: *layers* layers of 1..*width* vertices, forward edges
    between consecutive layers with probability *edge_probability*; every
    non-first-layer vertex is guaranteed at least one predecessor so the
    layer structure is real.

    With *layer_sizes* the per-layer vertex counts are taken verbatim
    (``layers``/``width`` then only validate them), which is how
    :func:`repro.generation.tasksets.generate_dag` pins the total vertex
    count inside the configured ``min_vertices``/``max_vertices`` bounds.
    """
    if layers < 1 or width < 1:
        raise GenerationError("layers and width must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise GenerationError(
            f"edge probability must be in [0, 1], got {edge_probability}"
        )
    if layer_sizes is not None:
        if len(layer_sizes) != layers:
            raise GenerationError(
                f"layer_sizes has {len(layer_sizes)} entries for {layers} "
                "layers"
            )
        if any(not 1 <= s <= width for s in layer_sizes):
            raise GenerationError(
                f"every layer size must lie in [1, {width}], got "
                f"{list(layer_sizes)}"
            )
    wcets: dict[int, float] = {}
    layer_members: list[list[int]] = []
    next_id = 0
    for index in range(layers):
        if layer_sizes is None:
            size = int(rng.integers(1, width + 1))
        else:
            size = int(layer_sizes[index])
        members = list(range(next_id, next_id + size))
        next_id += size
        for v in members:
            wcets[v] = wcet_sampler(rng)
        layer_members.append(members)
    edges: list[tuple[int, int]] = []
    for prev, cur in zip(layer_members, layer_members[1:]):
        for v in cur:
            preds = [u for u in prev if rng.random() < edge_probability]
            if not preds:
                preds = [prev[int(rng.integers(0, len(prev)))]]
            edges.extend((u, v) for u in preds)
    return DAG(wcets, edges)


def nested_fork_join(
    depth: int,
    max_branches: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
    branch_probability: float = 0.8,
) -> DAG:
    """Recursively nested fork-join DAG.

    A segment is either a single job or a fork of 2..*max_branches* parallel
    sub-segments between a fork job and a join job; recursion stops at
    *depth* or with probability ``1 - branch_probability`` per level.
    """
    if depth < 0 or max_branches < 2:
        raise GenerationError("depth must be >= 0 and max_branches >= 2")
    wcets: dict[int, float] = {}
    edges: list[tuple[int, int]] = []
    counter = [0]

    def new_job() -> int:
        vid = counter[0]
        counter[0] += 1
        wcets[vid] = wcet_sampler(rng)
        return vid

    def build(level: int) -> tuple[int, int]:
        """Build one segment; returns its (entry, exit) vertices."""
        if level >= depth or rng.random() > branch_probability:
            v = new_job()
            return v, v
        fork = new_job()
        join = new_job()
        branches = int(rng.integers(2, max_branches + 1))
        for _ in range(branches):
            entry, exit_ = build(level + 1)
            edges.append((fork, entry))
            edges.append((exit_, join))
        return fork, join

    build(0)
    return DAG(wcets, edges)


def nested_fork_join_sized(
    vertices: int,
    max_depth: int,
    max_branches: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
    branch_probability: float = 0.8,
) -> DAG:
    """Nested fork-join DAG with *exactly* the requested vertex count.

    Unlike :func:`nested_fork_join` (whose size is an emergent property of
    the recursion), this variant hands each segment an exact vertex budget:
    a segment with budget >= 4 may fork into 2..*max_branches* sub-segments
    (splitting the remaining budget among them); smaller budgets -- or
    recursion past *max_depth*, or a ``1 - branch_probability`` coin --
    become sequential chains.  The result is always a single-source,
    single-sink member of the nested-fork-join class, which is what lets
    :func:`repro.generation.tasksets.generate_dag` honour
    ``min_vertices``/``max_vertices`` for this family.
    """
    if vertices < 1:
        raise GenerationError(f"need at least one vertex, got {vertices}")
    if max_depth < 0 or max_branches < 2:
        raise GenerationError("max_depth must be >= 0 and max_branches >= 2")
    wcets: dict[int, float] = {}
    edges: list[tuple[int, int]] = []
    counter = [0]

    def new_job() -> int:
        vid = counter[0]
        counter[0] += 1
        wcets[vid] = wcet_sampler(rng)
        return vid

    def chain_segment(budget: int) -> tuple[int, int]:
        entry = new_job()
        tail = entry
        for _ in range(budget - 1):
            nxt = new_job()
            edges.append((tail, nxt))
            tail = nxt
        return entry, tail

    def build(level: int, budget: int) -> tuple[int, int]:
        """Build one segment of exactly *budget* jobs; returns (entry, exit)."""
        if (
            budget < 4
            or level >= max_depth
            or rng.random() > branch_probability
        ):
            return chain_segment(budget)
        # fork + join take two jobs; split the rest over >= 2 branches.
        branches = int(rng.integers(2, min(max_branches, budget - 2) + 1))
        fork = new_job()
        join = new_job()
        for part in random_composition(budget - 2, branches, None, rng):
            entry, exit_ = build(level + 1, part)
            edges.append((fork, entry))
            edges.append((exit_, join))
        return fork, join

    build(0, vertices)
    return DAG(wcets, edges)


def series_parallel(
    target_vertices: int,
    rng: np.random.Generator,
    wcet_sampler: WcetSampler = _default_wcet,
    parallel_probability: float = 0.5,
    exact: bool = False,
) -> DAG:
    """Random series-parallel DAG with roughly *target_vertices* vertices.

    Starts from a single job and repeatedly expands a random job into either
    a series pair (one extra vertex) or a parallel fork-join diamond (three
    extra vertices: the join plus two branches) until the target size is
    reached.  The final size may overshoot by up to *two* vertices: the last
    expansion fires while the count is still below the target, so the worst
    case is a diamond landing on ``target - 1 + 3``.  With ``exact=True``
    diamond expansions that would cross the target are demoted to series
    expansions, so the size equals *target_vertices* exactly (same random
    stream; only the expansion choice is overridden).
    """
    if target_vertices < 1:
        raise GenerationError(f"need at least one vertex, got {target_vertices}")
    wcets: dict[int, float] = {0: wcet_sampler(rng)}
    # adjacency kept mutable during construction
    succ: dict[int, set[int]] = {0: set()}
    pred: dict[int, set[int]] = {0: set()}
    counter = [1]

    def new_job() -> int:
        vid = counter[0]
        counter[0] += 1
        wcets[vid] = wcet_sampler(rng)
        succ[vid] = set()
        pred[vid] = set()
        return vid

    def expand_series(v: int) -> None:
        w = new_job()
        for s in list(succ[v]):
            succ[v].discard(s)
            pred[s].discard(v)
            succ[w].add(s)
            pred[s].add(w)
        succ[v].add(w)
        pred[w].add(v)

    def expand_parallel(v: int) -> None:
        join = new_job()
        for s in list(succ[v]):
            succ[v].discard(s)
            pred[s].discard(v)
            succ[join].add(s)
            pred[s].add(join)
        for _ in range(2):
            b = new_job()
            succ[v].add(b)
            pred[b].add(v)
            succ[b].add(join)
            pred[join].add(b)

    while counter[0] < target_vertices:
        v = int(rng.integers(0, counter[0]))
        parallel = rng.random() < parallel_probability
        if exact and counter[0] + 3 > target_vertices:
            parallel = False
        if parallel:
            expand_parallel(v)
        else:
            expand_series(v)
    edges = [(u, v) for u, vs in succ.items() for v in vs]
    return DAG(wcets, edges)
