"""Adversarial generation: the Chen lower-bound gadget family.

Chen (arXiv 1510.07254) proves that federated scheduling -- *any* algorithm
that either grants a task dedicated processors or restricts it to sequential
execution -- admits **no constant speedup factor** for constrained-deadline
DAG task systems.  This bounds the scope of the paper's Theorem 1: the
``3 - 1/m`` bound is measured against an *optimal federated* scheduler, not
against general feasibility.  This module implements the lower-bound
construction as a parameterized generator so every heuristic in the repo can
be stressed against its own counterexample family.

The gadget ``chen_gadget(k)``
-----------------------------

``k + 1`` fully-parallel DAG tasks at geometrically spaced deadline scales,
each of density exactly ``k``, on a platform of ``m = 2k + 1`` processors::

    task i (i = 1 .. k+1):   D_i = base**i,   T_i = stretch * D_i,
                             DAG = k * chunk independent vertices of
                                   WCET D_i / chunk
    =>  vol_i = k * D_i,  len_i = D_i / chunk,  delta_i = k,  u_i ~ 0

Why it is *feasible* near speed 1 (nested-burst argument): the windows of a
synchronous release are nested, so a non-federated scheduler can run job
``i`` inside the sub-interval ``(D_{i-1}, D_i]`` alone at rate
``k * D_i / (D_i - D_{i-1}) = k * base / (base - 1)`` -- at ``base = 2``
that is ``2k <= m`` processors, one job at a time.  The repo's necessary
conditions agree: ``LOAD = 2k (1 - 2^-(k+1)) <= m`` and
``vol_i / (m * D_i) = k / (2k+1) < 1``, so
:func:`~repro.analysis.feasibility.necessary_speed_bound` tends to 1 from
below as ``k`` grows.

Why FEDCONS needs speed ``k``: at any speed ``s < k`` every task has density
``k / s > 1``, so all ``k + 1`` are high-density and MINPROCS must dedicate
at least ``ceil(k/s) >= 2`` processors each -- ``2(k+1) > m`` processors in
total -- and the high-density phase fails.  At ``s >= k`` the tasks drop to
density ``<= 1``; each fits a singleton cluster (or collapses to a sequential
task of WCET ``<= D_i`` and is partitioned), and ``k + 1 <= m`` suffices.
The measured minimum accepting speed is therefore exactly ``k`` while the
necessary-feasibility speed stays below 1: the empirical speedup requirement
``s_FEDCONS / s_necessary`` grows without bound, overtaking ``3 - 1/m ~ 3``
from ``k = 3`` on.  No constant speedup factor survives the family --
exactly Chen's theorem, rendered executable.

The hardness dial
-----------------

``hardness`` in ``(0, 1]`` scales the per-task density to
``max(1, hardness * k)`` (vertex count, structure and platform unchanged),
grading the family from a benign density-1 instance (``hardness <= 1/k``,
admitted near speed 1) up to the full lower-bound gadget.  The predicted
FEDCONS requirement is the density itself, so the dial produces *near-tight*
instances at every speed level between 1 and ``k`` -- the stress fixtures
the conformance harness and the golden tests replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GenerationError
from repro.model.dag import DAG
from repro.model.task import SporadicDAGTask
from repro.model.taskset import TaskSystem

__all__ = [
    "HARDNESS_GRADES",
    "GadgetInstance",
    "chen_gadget",
    "hardness_dial",
]

#: The graded dial used by the golden fixtures and the conformance harness.
HARDNESS_GRADES = (0.125, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class GadgetInstance:
    """One generated gadget: the task system, its platform, and predictions.

    Attributes
    ----------
    system / processors:
        The task system and the platform size ``m = 2k + 1`` it targets.
    k:
        The hardness-family index (the unbounded-speedup parameter).
    hardness:
        The dial position in ``(0, 1]`` this instance was generated at.
    density:
        The realized per-task density ``max(1, hardness * k)`` (after vertex
        rounding) -- every task in the gadget has exactly this density.
    predicted_speed:
        The analytic minimum FEDCONS accepting speed: the density itself
        (below it the dedicated phase is over-subscribed, at it singleton
        clusters / sequential collapse succeed).
    """

    system: TaskSystem
    processors: int
    k: int
    hardness: float
    density: float
    predicted_speed: float

    @property
    def levels(self) -> int:
        """Number of deadline scales (= tasks) in the gadget."""
        return len(self.system)


def chen_gadget(
    k: int,
    hardness: float = 1.0,
    levels: int | None = None,
    base: float = 2.0,
    chunk: int = 4,
    stretch: float = 1e4,
    name_prefix: str = "chen",
) -> GadgetInstance:
    """The Chen lower-bound gadget at family index *k* and dial *hardness*.

    Parameters
    ----------
    k:
        Family index: the full-hardness gadget needs FEDCONS speed ``k``
        while staying necessary-feasible near speed 1.
    hardness:
        Dial in ``(0, 1]``; the per-task density is ``max(1, hardness * k)``.
    levels:
        Number of deadline scales.  The default ``k + 1`` is the least count
        for which the dedicated phase is over-subscribed at every speed below
        the density (``2 * levels > m``); larger values deepen the geometric
        nesting without changing the speed threshold.
    base:
        Geometric deadline spacing (``D_i = base ** i``).  The default 2
        makes all WCETs exact binary floats, so analysis verdicts at the
        speed threshold are razor-sharp rather than tolerance-dependent.
    chunk:
        Structure granularity: each task has ``round(density * chunk)``
        independent vertices of WCET ``D_i / chunk``, so
        ``len_i = D_i / chunk``.
    stretch:
        ``T_i = stretch * D_i`` -- the constrained-deadline gap that makes
        dedicated clusters idle ``(1 - 1/stretch)`` of the time, which is
        the structural waste the lower bound exploits.

    Raises
    ------
    GenerationError
        On out-of-range parameters (``k < 1``, ``hardness`` outside
        ``(0, 1]``, ``base <= 1``, ``chunk < 2``, ``stretch <= 1``,
        ``levels < k + 1``).
    """
    if k < 1:
        raise GenerationError(f"gadget index k must be >= 1, got {k}")
    if not 0.0 < hardness <= 1.0:
        raise GenerationError(f"hardness must be in (0, 1], got {hardness}")
    if base <= 1.0:
        raise GenerationError(f"deadline base must be > 1, got {base}")
    if chunk < 2:
        raise GenerationError(f"chunk must be >= 2, got {chunk}")
    if stretch <= 1.0:
        raise GenerationError(f"period stretch must be > 1, got {stretch}")
    n = k + 1 if levels is None else levels
    if n < k + 1:
        raise GenerationError(
            f"levels must be >= k + 1 = {k + 1} (else the dedicated phase "
            f"is not over-subscribed), got {n}"
        )
    count = max(chunk, round(max(1.0, hardness * k) * chunk))
    density = count / chunk
    tasks = []
    for i in range(1, n + 1):
        deadline = base ** i
        dag = DAG.independent([deadline / chunk] * count)
        tasks.append(
            SporadicDAGTask(
                dag=dag,
                deadline=deadline,
                period=stretch * deadline,
                name=f"{name_prefix}_{i}",
            )
        )
    return GadgetInstance(
        system=TaskSystem(tasks),
        processors=2 * k + 1,
        k=k,
        hardness=hardness,
        density=density,
        predicted_speed=density,
    )


def hardness_dial(
    k: int,
    grades: tuple[float, ...] = HARDNESS_GRADES,
    **kwargs,
) -> list[GadgetInstance]:
    """The graded gadget family at index *k*, one instance per dial grade.

    The returned instances share platform and structure and differ only in
    density, so their measured FEDCONS speeds trace the dial from ~1 up to
    ``k`` -- the near-tight frontier.  Keyword arguments are forwarded to
    :func:`chen_gadget`.
    """
    if not grades:
        raise GenerationError("hardness_dial needs at least one grade")
    return [chen_gadget(k, hardness=grade, **kwargs) for grade in grades]
