"""The workload-zoo family registry: every DAG generator behind one name.

The paper's caveat -- schedulability results "are necessarily deeply
influenced by the manner in which we generate our task systems" -- makes
DAG structure a first-class experiment axis.  This module is the single
switchboard for that axis: every generator family (the four random kinds,
the elementary shapes, the five Pegasus scientific workflows, and any
imported DAX workflow) registers here under a stable name, and
:class:`~repro.generation.tasksets.SystemConfig`, the trace generator, the
EXP-W sweep and the CLIs all resolve families through it.

A family's builder receives the requested vertex-count range ``[lo, hi]``
and must return a DAG whose size lies inside it, drawing any free
parameters from the supplied RNG -- or raise
:class:`~repro.errors.GenerationError` when its structural granularity
admits no size in the range (e.g. a square grid asked for 10..15 vertices).
Imported DAX families are the one exception: their graph is a fixed,
measured artifact, so they ignore the range (``fixed_size`` is set).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import GenerationError
from repro.generation import elementary, pegasus
from repro.generation.dag_generators import (
    WcetSampler,
    _default_wcet,
    erdos_renyi_dag,
    nested_fork_join_sized,
    random_composition,
    series_parallel,
)
from repro.generation.dax import load_dax
from repro.model.dag import DAG

__all__ = [
    "Family",
    "build_family_dag",
    "family_names",
    "get_family",
    "register_dax_family",
    "register_family",
]

#: A builder maps (min_vertices, max_vertices, rng, wcet_sampler) to a DAG.
Builder = Callable[[int, int, np.random.Generator, WcetSampler], DAG]


@dataclass(frozen=True)
class Family:
    """One registered generator family of the workload zoo.

    ``single_source``/``single_sink`` document the family's entry/exit
    structure (asserted by the shared validity suite); ``fixed_size`` marks
    families whose graph is a fixed artifact (DAX imports) and therefore
    exempt from the size-range contract.
    """

    name: str
    group: str  # "random" | "elementary" | "pegasus" | "dax"
    description: str
    builder: Builder = field(repr=False)
    single_source: bool = False
    single_sink: bool = False
    fixed_size: bool = False


_REGISTRY: dict[str, Family] = {}


def register_family(family: Family) -> Family:
    """Add *family* to the registry (its name must be unused)."""
    if family.name in _REGISTRY:
        raise GenerationError(f"family {family.name!r} is already registered")
    _REGISTRY[family.name] = family
    return family


def get_family(name: str) -> Family:
    """Look a family up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GenerationError(
            f"unknown DAG family {name!r}; known: {family_names()}"
        ) from None


def family_names(group: str | None = None) -> tuple[str, ...]:
    """All registered family names (optionally one *group*), registry order."""
    return tuple(
        name
        for name, fam in _REGISTRY.items()
        if group is None or fam.group == group
    )


def build_family_dag(
    name: str,
    min_vertices: int,
    max_vertices: int | None = None,
    rng: np.random.Generator | int | None = None,
    wcet_sampler: WcetSampler = _default_wcet,
) -> DAG:
    """Build one DAG of the named family with size in the requested range."""
    if max_vertices is None:
        max_vertices = min_vertices
    if not 1 <= min_vertices <= max_vertices:
        raise GenerationError(
            f"need 1 <= min_vertices <= max_vertices, got "
            f"({min_vertices}, {max_vertices})"
        )
    if rng is None or isinstance(rng, int):
        rng = np.random.default_rng(rng)
    return get_family(name).builder(min_vertices, max_vertices, rng, wcet_sampler)


def _sized(
    lo: int,
    hi: int,
    rng: np.random.Generator,
    size_of: Callable[[int], int],
    p_min: int,
    family: str,
) -> int:
    """A uniformly drawn parameter whose (monotone) size lands in [lo, hi]."""
    feasible: list[int] = []
    p = p_min
    while size_of(p) <= hi:
        if size_of(p) >= lo:
            feasible.append(p)
        p += 1
    if not feasible:
        raise GenerationError(
            f"family {family!r} has no instance with {lo}..{hi} vertices; "
            "widen min_vertices/max_vertices"
        )
    return feasible[int(rng.integers(0, len(feasible)))]


def _draw(lo: int, hi: int, rng: np.random.Generator, floor: int, family: str) -> int:
    """A uniform size draw from [max(lo, floor), hi]."""
    if hi < floor:
        raise GenerationError(
            f"family {family!r} needs at least {floor} vertices; got "
            f"max_vertices={hi}"
        )
    return int(rng.integers(max(lo, floor), hi + 1))


# ---------------------------------------------------------------------------
# random families (the knob-aware dispatch for these lives in generate_dag;
# the registry builders expose them to the zoo API with the EXP-A defaults)
# ---------------------------------------------------------------------------

def _erdos_renyi(lo, hi, rng, sampler):
    return erdos_renyi_dag(_draw(lo, hi, rng, 1, "erdos_renyi"), 0.2, rng, sampler)


def _layered(lo, hi, rng, sampler):
    from repro.generation.dag_generators import layered_dag

    n = _draw(lo, hi, rng, 1, "layered")
    layers = max(1, round(float(np.sqrt(n))))
    sizes = random_composition(n, layers, None, rng)
    return layered_dag(layers, max(sizes), 0.2, rng, sampler, layer_sizes=sizes)


def _nested_fork_join(lo, hi, rng, sampler):
    return nested_fork_join_sized(
        _draw(lo, hi, rng, 1, "nested_fork_join"), 3, 4, rng, sampler
    )


def _series_parallel(lo, hi, rng, sampler):
    return series_parallel(
        _draw(lo, hi, rng, 1, "series_parallel"), rng, sampler, exact=True
    )


# ---------------------------------------------------------------------------
# elementary families
# ---------------------------------------------------------------------------

def _fork_join(lo, hi, rng, sampler):
    return elementary.fork_join(_draw(lo, hi, rng, 3, "fork_join") - 2, rng, sampler)


def _map_reduce(lo, hi, rng, sampler):
    n = _draw(lo, hi, rng, 2, "map_reduce")
    mappers = int(rng.integers(1, n))
    return elementary.map_reduce(mappers, n - mappers, rng, sampler)


def _grid(lo, hi, rng, sampler):
    k = _sized(lo, hi, rng, lambda k: k * k, 1, "grid")
    return elementary.grid(k, k, rng, sampler)


def _stairs(lo, hi, rng, sampler):
    return elementary.stairs(_draw(lo, hi, rng, 1, "stairs"), rng, sampler)


def _bigmerge(lo, hi, rng, sampler):
    return elementary.bigmerge(_draw(lo, hi, rng, 2, "bigmerge") - 1, rng, sampler)


def _splitters(lo, hi, rng, sampler):
    d = _sized(lo, hi, rng, lambda d: 2 ** (d + 1) - 1, 0, "splitters")
    return elementary.splitters(d, rng, sampler)


def _conflux(lo, hi, rng, sampler):
    d = _sized(lo, hi, rng, lambda d: 2 ** (d + 1) - 1, 0, "conflux")
    return elementary.conflux(d, rng, sampler)


# ---------------------------------------------------------------------------
# Pegasus scientific-workflow families
# ---------------------------------------------------------------------------

def _montage(lo, hi, rng, sampler):
    return pegasus.montage(
        _sized(lo, hi, rng, lambda w: 3 * w + 5, 2, "montage"), rng, sampler
    )


def _cybershake(lo, hi, rng, sampler):
    return pegasus.cybershake(
        _sized(lo, hi, rng, lambda s: 2 * s + 4, 2, "cybershake"), rng, sampler
    )


def _epigenomics(lo, hi, rng, sampler):
    return pegasus.epigenomics(
        _sized(lo, hi, rng, lambda c: 4 * c + 4, 2, "epigenomics"), rng, sampler
    )


def _ligo(lo, hi, rng, sampler):
    return pegasus.ligo(
        _sized(lo, hi, rng, lambda g: 14 * g, 1, "ligo"), rng, sampler
    )


def _sipht(lo, hi, rng, sampler):
    return pegasus.sipht(
        _sized(lo, hi, rng, lambda p: p + 10, 2, "sipht"), rng, sampler
    )


for _family in (
    Family("erdos_renyi", "random", "ordered G(n, p), p=0.2", _erdos_renyi),
    Family("layered", "random", "random layered DAG, forward edges", _layered),
    Family(
        "nested_fork_join", "random", "recursive fork-join nesting",
        _nested_fork_join, single_source=True, single_sink=True,
    ),
    Family(
        "series_parallel", "random", "random series/parallel composition",
        _series_parallel, single_source=True, single_sink=True,
    ),
    Family(
        "fork_join", "elementary", "fork, parallel branches, join",
        _fork_join, single_source=True, single_sink=True,
    ),
    Family("map_reduce", "elementary", "complete bipartite map -> reduce", _map_reduce),
    Family(
        "grid", "elementary", "square lattice wavefront",
        _grid, single_source=True, single_sink=True,
    ),
    Family(
        "stairs", "elementary", "sequential chain, stair-step WCETs",
        _stairs, single_source=True, single_sink=True,
    ),
    Family(
        "bigmerge", "elementary", "independent jobs into one sink",
        _bigmerge, single_sink=True,
    ),
    Family(
        "splitters", "elementary", "complete binary out-tree",
        _splitters, single_source=True,
    ),
    Family(
        "conflux", "elementary", "complete binary in-tree",
        _conflux, single_sink=True,
    ),
    Family(
        "montage", "pegasus", "astronomy mosaic (Montage)",
        _montage, single_sink=True,
    ),
    Family("cybershake", "pegasus", "seismic hazard (CyberShake)", _cybershake),
    Family(
        "epigenomics", "pegasus", "genome sequencing (Epigenomics)",
        _epigenomics, single_source=True, single_sink=True,
    ),
    Family("ligo", "pegasus", "gravitational-wave inspiral (LIGO)", _ligo),
    Family("sipht", "pegasus", "sRNA annotation (SIPHT)", _sipht),
):
    register_family(_family)
del _family


def register_dax_family(
    source: str | Path,
    name: str | None = None,
    default_runtime: float | None = None,
) -> str:
    """Import a DAX workflow and register it as a (fixed-size) family.

    The returned name (``"dax:<stem>"`` unless given) can then be used
    anywhere a family name is accepted -- ``SystemConfig.dag_kind``, trace
    shapes, the EXP-W sweep, or the CLIs.  Registering the same source
    under its existing name again is a no-op (idempotent), as long as the
    imported graph is unchanged; a conflicting graph under a taken name
    raises.
    """
    dag = load_dax(source, default_runtime=default_runtime)
    stem = Path(str(source)).stem if not str(source).lstrip().startswith("<") else "inline"
    family_name = name if name is not None else f"dax:{stem}"
    existing = _REGISTRY.get(family_name)
    if existing is not None:
        if existing.group == "dax" and existing.builder(1, 1, None, None) == dag:
            return family_name
        raise GenerationError(
            f"family name {family_name!r} is already taken by a different "
            "graph or family"
        )

    def _fixed(lo: int, hi: int, rng, sampler) -> DAG:
        """Return the imported graph verbatim (size bounds do not apply)."""
        return dag

    register_family(
        Family(
            name=family_name,
            group="dax",
            description=f"imported DAX workflow ({stem}, |V|={len(dag)})",
            builder=_fixed,
            single_source=len(dag.sources) == 1,
            single_sink=len(dag.sinks) == 1,
            fixed_size=True,
        )
    )
    return family_name
