"""Sporadic arrival/departure trace generation for the online controller.

The generator models an open system: tasks arrive as a Poisson-ish process
(exponential inter-arrival times), live for an exponentially distributed
lifetime, then depart.  Arrivals are drawn from the same task-shape machinery
as the batch experiments (:func:`repro.generation.tasksets.generate_task`),
with a configurable fraction of *heavy* arrivals whose tight deadlines make
them (usually) high-density -- these are the cluster-grabbing requests that
stress the departure/reclamation path.

Everything is driven by one :class:`numpy.random.Generator`, so a
``(config, seed)`` pair yields a byte-identical trace -- the basis of the
committed golden trace and the soak experiment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import GenerationError
from repro.generation.tasksets import SystemConfig, generate_task
from repro.online.trace import TraceEvent

__all__ = ["TraceConfig", "generate_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the sporadic event-trace generator.

    ``events`` counts emitted events (admits + departs together).  A task's
    departure is emitted only if it falls inside the trace window; with
    ``mean_lifetime`` large against ``mean_interarrival * events`` the trace
    is admit-heavy and the live population grows, which is what the scaling
    benchmark wants.
    """

    events: int = 200
    processors: int = 16
    mean_interarrival: float = 1.0
    mean_lifetime: float = 50.0
    heavy_fraction: float = 0.25  # arrivals drawn with cluster-tight deadlines
    utilization_low: float = 0.05
    utilization_high: float = 0.45
    heavy_utilization: float = 1.5  # target utilization of heavy arrivals
    shape: SystemConfig = SystemConfig(
        min_vertices=8,
        max_vertices=20,
        deadline_ratio=(0.35, 1.0),
    )
    heavy_deadline_ratio: tuple[float, float] = (0.01, 0.12)

    def __post_init__(self) -> None:
        if self.events < 1:
            raise GenerationError(f"events must be >= 1, got {self.events}")
        if self.processors < 1:
            raise GenerationError(
                f"processors must be >= 1, got {self.processors}"
            )
        if self.mean_interarrival <= 0 or self.mean_lifetime <= 0:
            raise GenerationError(
                "mean_interarrival and mean_lifetime must be positive"
            )
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise GenerationError(
                f"heavy_fraction must be in [0, 1], got {self.heavy_fraction}"
            )
        if not 0 < self.utilization_low <= self.utilization_high:
            raise GenerationError(
                "need 0 < utilization_low <= utilization_high"
            )
        # The heavy path multiplies heavy_utilization by U[0.5, 1.5) and
        # redraws deadlines from heavy_deadline_ratio; a non-positive target
        # or an inverted/out-of-range ratio pair would otherwise surface as
        # cryptic per-arrival failures (or, worse, nonsense traces) deep
        # inside generate_task.  Validate here, even when heavy_fraction is
        # 0 -- a config that *can't* draw heavies should still be coherent.
        if not self.heavy_utilization > 0:
            raise GenerationError(
                f"heavy_utilization must be positive, got "
                f"{self.heavy_utilization}"
            )
        lo, hi = self.heavy_deadline_ratio
        if not 0.0 <= lo <= hi <= 1.0:
            raise GenerationError(
                "heavy_deadline_ratio must satisfy 0 <= lo <= hi <= 1, got "
                f"({lo}, {hi})"
            )


def _arrival(
    config: TraceConfig, rng: np.random.Generator, name: str
) -> TraceEvent:
    """Draw one arriving task (placeholder ``at``; caller overwrites)."""
    if rng.random() < config.heavy_fraction:
        shape = replace(config.shape, deadline_ratio=config.heavy_deadline_ratio)
        utilization = config.heavy_utilization * (0.5 + rng.random())
    else:
        shape = config.shape
        utilization = rng.uniform(config.utilization_low, config.utilization_high)
    task = generate_task(utilization, shape, rng, name=name)
    return TraceEvent(op="admit", task_id=name, task=task)


def generate_trace(
    config: TraceConfig, rng: np.random.Generator | int | None = None
) -> list[TraceEvent]:
    """One deterministic sporadic arrival/departure trace.

    Events are emitted in timestamp order; each arriving task is named
    ``t0000, t0001, ...`` in arrival order, so departure events reference
    their arrival unambiguously.
    """
    if rng is None or isinstance(rng, int):
        rng = np.random.default_rng(rng)
    events: list[TraceEvent] = []
    pending: list[tuple[float, int, str]] = []  # (depart time, tie, id) heap
    clock = 0.0
    arrivals = 0
    while len(events) < config.events:
        next_arrival = clock + rng.exponential(config.mean_interarrival)
        if pending and pending[0][0] <= next_arrival:
            depart_at, _, task_id = heapq.heappop(pending)
            clock = depart_at
            events.append(
                TraceEvent(op="depart", task_id=task_id, at=round(clock, 6))
            )
            continue
        clock = next_arrival
        name = f"t{arrivals:04d}"
        arrivals += 1
        arrival = _arrival(config, rng, name)
        events.append(
            TraceEvent(
                op="admit", task_id=name, at=round(clock, 6), task=arrival.task
            )
        )
        lifetime = rng.exponential(config.mean_lifetime)
        heapq.heappush(pending, (clock + lifetime, arrivals, name))
    return events
