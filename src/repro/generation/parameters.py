"""Utilization, period, deadline, and WCET parameter generation.

The standard recipes of the real-time evaluation literature:

* :func:`uunifast` [Bini & Buttazzo 2005] splits a total utilization ``U``
  uniformly over ``n`` tasks.  Unlike the sequential-task setting, per-task
  utilizations above one are *legal* for DAG tasks (internal parallelism),
  so no discard-and-retry loop is needed;
* periods are derived from volumes: given a DAG with volume ``vol`` and a
  target utilization ``u``, set ``T = vol / u`` (the convention of Li et
  al.'s federated-scheduling experiments);
* constrained deadlines interpolate between the structural minimum and the
  period: ``D = len + x * (T - len)`` with ``x ~ U[lo, hi]``; ``x < vol/T``
  regions produce high-density tasks, ``x = 1`` recovers implicit deadlines.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GenerationError

__all__ = [
    "uunifast",
    "randfixedsum",
    "loguniform",
    "uniform_wcet_sampler",
    "loguniform_wcet_sampler",
    "period_for_utilization",
    "constrained_deadline",
]


def uunifast(n: int, total_utilization: float, rng: np.random.Generator) -> list[float]:
    """UUniFast: *n* utilizations summing to *total_utilization*.

    The classic unbiased simplex sampling of Bini & Buttazzo (2005).

    Raises
    ------
    GenerationError
        If ``n < 1`` or *total_utilization* is not positive.
    """
    if n < 1:
        raise GenerationError(f"need n >= 1 tasks, got {n}")
    if total_utilization <= 0:
        raise GenerationError(
            f"total utilization must be positive, got {total_utilization}"
        )
    utilizations: list[float] = []
    remaining = total_utilization
    for i in range(n - 1, 0, -1):
        next_remaining = remaining * float(rng.random()) ** (1.0 / i)
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def randfixedsum(
    n: int,
    total: float,
    rng: np.random.Generator,
    low: float = 0.0,
    high: float | None = None,
) -> list[float]:
    """Stafford's RandFixedSum: *n* values in ``[low, high]`` summing to *total*,
    sampled uniformly from that simplex slice.

    The generator recommended by Emberson, Stafford & Davis ("Techniques for
    the synthesis of multiprocessor tasksets", WATERS 2010) as the unbiased
    alternative to UUniFast when per-value bounds matter.  With the default
    bounds (``low=0``, ``high=total``) it agrees with UUniFast's target
    distribution.

    Raises
    ------
    GenerationError
        If the constraints are unsatisfiable (``n*low <= total <= n*high``
        must hold) or *n* < 1.
    """
    if n < 1:
        raise GenerationError(f"need n >= 1 values, got {n}")
    if high is None:
        high = total
    if not low <= high:
        raise GenerationError(f"need low <= high, got ({low}, {high})")
    if not n * low - 1e-12 <= total <= n * high + 1e-12:
        raise GenerationError(
            f"sum {total} unreachable with {n} values in [{low}, {high}]"
        )
    if n == 1:
        return [float(total)]
    if high == low:
        return [float(low)] * n

    # Rescale to the unit cube.
    u = (total - n * low) / (high - low)
    k = int(max(min(math.floor(u), n - 1), 0))
    s = max(min(u, float(k + 1)), float(k))
    s1 = s - np.arange(k, k - n, -1, dtype=float)
    s2 = np.arange(k + n, k, -1, dtype=float) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[:i] / i
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / i
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[:i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros(n)
    rt = rng.uniform(size=n - 1)
    rs = rng.uniform(size=n - 1)
    s_work = s
    j = k + 1
    sm = 0.0
    pr = 1.0
    for i in range(n - 1, 0, -1):
        e = 1.0 if rt[n - i - 1] <= t[i - 1, j - 1] else 0.0
        sx = rs[n - i - 1] ** (1.0 / i)
        sm += (1.0 - sx) * pr * s_work / (i + 1)
        pr *= sx
        x[n - i - 1] = sm + pr * e
        s_work -= e
        j -= int(e)
    x[n - 1] = sm + pr * s_work

    rng.shuffle(x)
    return [float(v) for v in (high - low) * x + low]


def loguniform(
    low: float, high: float, rng: np.random.Generator
) -> float:
    """A draw from the log-uniform distribution on ``[low, high]``."""
    if not 0 < low <= high:
        raise GenerationError(f"need 0 < low <= high, got ({low}, {high})")
    return float(math.exp(rng.uniform(math.log(low), math.log(high))))


def uniform_wcet_sampler(low: int = 1, high: int = 100):
    """A WCET sampler drawing integers uniformly from ``[low, high]``."""
    if not 1 <= low <= high:
        raise GenerationError(f"need 1 <= low <= high, got ({low}, {high})")

    def sample(rng: np.random.Generator) -> float:
        return float(rng.integers(low, high + 1))

    return sample


def loguniform_wcet_sampler(low: float = 1.0, high: float = 100.0):
    """A WCET sampler drawing log-uniformly from ``[low, high]``."""
    if not 0 < low <= high:
        raise GenerationError(f"need 0 < low <= high, got ({low}, {high})")

    def sample(rng: np.random.Generator) -> float:
        return loguniform(low, high, rng)

    return sample


def period_for_utilization(volume: float, utilization: float) -> float:
    """``T = vol / u`` -- the period giving a DAG task utilization ``u``."""
    if volume <= 0 or utilization <= 0:
        raise GenerationError("volume and utilization must be positive")
    return volume / utilization


def constrained_deadline(
    span: float,
    period: float,
    rng: np.random.Generator,
    ratio_range: tuple[float, float] = (0.0, 1.0),
) -> float:
    """``D = len + x * (T - len)`` with ``x ~ U[ratio_range]``.

    Guarantees ``len <= D <= T`` (structurally feasible and constrained).
    When ``T < len`` the task cannot be constrained-deadline-feasible at all;
    a :class:`~repro.errors.GenerationError` is raised so generators can
    resample.
    """
    lo, hi = ratio_range
    if not 0.0 <= lo <= hi <= 1.0:
        raise GenerationError(
            f"ratio range must satisfy 0 <= lo <= hi <= 1, got ({lo}, {hi})"
        )
    if period < span - 1e-9 * max(1.0, span):
        raise GenerationError(
            f"period {period:g} below critical path {span:g}; task infeasible"
        )
    period = max(period, span)
    x = float(rng.uniform(lo, hi))
    return span + x * (period - span)
