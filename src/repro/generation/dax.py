"""Pegasus DAX (XML workflow description) import and export.

Real scientific workflows circulate as DAX files -- the abstract-DAG XML
dialect of the Pegasus workflow-management system: ``<job>`` elements with
an ``id`` and a ``runtime``, and ``<child ref=..><parent ref=../></child>``
elements naming the precedence edges.  :func:`load_dax` turns such a file
into a validated :class:`~repro.model.dag.DAG` (job ids become vertex ids,
runtimes become WCETs) using only the stdlib ``xml.etree``, so measured
workflow instances can be fed straight into the FEDCONS analysis and the
admission pipeline; :func:`dump_dax` writes the same dialect back out,
which is how the committed golden fixtures under ``repro/generation/data``
were produced and what makes round-tripping testable.

Namespaces are ignored (files in the wild use several schema versions), and
a job's runtime is taken from its ``runtime`` attribute or, failing that,
from a nested ``<profile key="runtime">`` element -- the two conventions of
the synthetic-workflow generators.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from xml.sax.saxutils import quoteattr

from repro.errors import GenerationError
from repro.model.dag import DAG

__all__ = ["dax_fixture_path", "dump_dax", "load_dax", "write_dax"]

#: Directory of the committed golden DAX fixtures (one per Pegasus family).
_DATA_DIR = Path(__file__).parent / "data"


def _local_name(tag: object) -> str:
    """Tag name with any ``{namespace}`` prefix stripped."""
    text = tag if isinstance(tag, str) else ""
    return text.rpartition("}")[2]


def _job_runtime(element: ET.Element, job_id: str) -> str | None:
    """The runtime attribute or nested runtime profile of a job, if any."""
    runtime = element.get("runtime")
    if runtime is not None:
        return runtime
    for child in element:
        if (
            _local_name(child.tag) == "profile"
            and child.get("key") == "runtime"
        ):
            return (child.text or "").strip()
    return None


def load_dax(
    source: str | Path,
    default_runtime: float | None = None,
) -> DAG:
    """Parse a Pegasus DAX file into a validated :class:`DAG`.

    Parameters
    ----------
    source:
        Path to the DAX file, or the XML document itself as a string
        (anything starting with ``<`` is treated as inline XML).
    default_runtime:
        WCET for jobs that carry no runtime; without it such jobs raise.

    Raises
    ------
    GenerationError
        On malformed XML, duplicate or missing job ids, dangling
        parent/child references, or non-positive/unparseable runtimes.
    """
    text = str(source)
    if not text.lstrip().startswith("<"):
        try:
            text = Path(source).read_text()
        except OSError as exc:
            raise GenerationError(f"cannot read DAX file {source}: {exc}") from exc
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GenerationError(f"malformed DAX XML: {exc}") from exc

    wcets: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    for element in root.iter():
        name = _local_name(element.tag)
        if name == "job":
            job_id = element.get("id")
            if not job_id:
                raise GenerationError("DAX job without an id attribute")
            if job_id in wcets:
                raise GenerationError(f"duplicate DAX job id {job_id!r}")
            runtime = _job_runtime(element, job_id)
            if runtime is None:
                if default_runtime is None:
                    raise GenerationError(
                        f"DAX job {job_id!r} has no runtime and no "
                        "default_runtime was given"
                    )
                value = float(default_runtime)
            else:
                try:
                    value = float(runtime)
                except ValueError as exc:
                    raise GenerationError(
                        f"DAX job {job_id!r} has unparseable runtime "
                        f"{runtime!r}"
                    ) from exc
            if value <= 0:
                raise GenerationError(
                    f"DAX job {job_id!r} has non-positive runtime {value!r}"
                )
            wcets[job_id] = value
        elif name == "child":
            child_ref = element.get("ref")
            if not child_ref:
                raise GenerationError("DAX child element without a ref")
            for sub in element:
                if _local_name(sub.tag) != "parent":
                    continue
                parent_ref = sub.get("ref")
                if not parent_ref:
                    raise GenerationError(
                        f"DAX parent of {child_ref!r} without a ref"
                    )
                edges.append((parent_ref, child_ref))
    if not wcets:
        raise GenerationError("DAX document contains no jobs")
    unknown = sorted(
        {v for edge in edges for v in edge if v not in wcets}
    )
    if unknown:
        raise GenerationError(
            f"DAX edges reference unknown job ids: {', '.join(unknown)}"
        )
    return DAG(wcets, edges)


def dump_dax(dag: DAG, name: str = "workflow") -> str:
    """Serialize *dag* as a Pegasus DAX document (deterministic order).

    Vertex ids are written as job ids via ``str``, WCETs as ``runtime``
    attributes via ``repr`` (so floats survive the round trip exactly);
    jobs appear in topological order and each vertex's parents in the DAG's
    stored edge order, making the output a pure function of the DAG.
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<adag xmlns="http://pegasus.isi.edu/schema/DAX" '
        f"name={quoteattr(name)} jobCount=\"{len(dag)}\">",
    ]
    for vertex in dag.vertices:
        vid = quoteattr(str(vertex))
        lines.append(
            f"  <job id={vid} name={vid} runtime="
            f"{quoteattr(repr(dag.wcet(vertex)))}/>"
        )
    for vertex in dag.vertices:
        parents = dag.predecessors(vertex)
        if not parents:
            continue
        lines.append(f"  <child ref={quoteattr(str(vertex))}>")
        lines.extend(
            f"    <parent ref={quoteattr(str(parent))}/>"
            for parent in parents
        )
        lines.append("  </child>")
    lines.append("</adag>")
    return "\n".join(lines) + "\n"


def write_dax(dag: DAG, path: str | Path, name: str = "workflow") -> None:
    """Write :func:`dump_dax` output to *path* atomically."""
    from repro.io import atomic_write_text

    atomic_write_text(Path(path), dump_dax(dag, name=name))


def dax_fixture_path(family: str) -> Path:
    """Path of the committed golden DAX fixture for one Pegasus *family*.

    Raises
    ------
    GenerationError
        If no fixture with that name is committed.
    """
    path = _DATA_DIR / f"{family}.dax"
    if not path.is_file():
        known = sorted(p.stem for p in _DATA_DIR.glob("*.dax"))
        raise GenerationError(
            f"no committed DAX fixture {family!r}; known: {known}"
        )
    return path
