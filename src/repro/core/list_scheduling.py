"""Graham's List Scheduling (LS) for precedence-constrained jobs.

LS [Graham, 1969] constructs a *work-conserving* schedule: whenever a
processor is idle and some job is available (all predecessors complete), the
highest-priority available job is started on it.  The paper uses LS to build
the template schedule ``sigma_i`` of each high-density task (Section IV-A)
because:

* the makespan of any LS schedule satisfies Graham's bound
  ``makespan <= len + (vol - len) / m``, which implies a speedup bound of
  ``2 - 1/m`` against an optimal (even preemptive) scheduler (Lemma 1); and
* although LS exhibits *timing anomalies* (shrinking an execution time may
  lengthen the schedule -- see :func:`graham_anomaly_instance`), the template
  is replayed as a lookup table at run time, which is anomaly-proof.

The priority list only affects which available job is chosen first; every
choice satisfies Graham's bound.  Several standard orders are provided.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.core import kernels as _kernels
from repro.core.kernels import CompiledDAG, flags as _kernel_flags
from repro.core.schedule import Schedule, Slot
from repro.model.dag import DAG, VertexId
from repro.obs.metrics import metrics as _metrics

__all__ = [
    "list_schedule",
    "graham_makespan_bound",
    "makespan_lower_bound",
    "PRIORITY_ORDERS",
    "priority_list",
    "PreparedLS",
    "prepare_ls",
    "compiled_priority",
    "graham_anomaly_instance",
]


def _upward_rank(dag: DAG) -> dict[VertexId, float]:
    """Length of the longest chain *starting* at each vertex (inclusive)."""
    rank: dict[VertexId, float] = {}
    for v in reversed(dag.vertices):
        tail = max((rank[s] for s in dag.successors(v)), default=0.0)
        rank[v] = dag.wcet(v) + tail
    return rank


def _order_given(dag: DAG) -> list[VertexId]:
    return list(dag.vertices)


def _order_longest_path(dag: DAG) -> list[VertexId]:
    rank = _upward_rank(dag)
    indices = {v: i for i, v in enumerate(dag.vertices)}
    return sorted(dag.vertices, key=lambda v: (-rank[v], indices[v]))


def _order_largest_wcet(dag: DAG) -> list[VertexId]:
    indices = {v: i for i, v in enumerate(dag.vertices)}
    return sorted(dag.vertices, key=lambda v: (-dag.wcet(v), indices[v]))


def _order_smallest_wcet(dag: DAG) -> list[VertexId]:
    indices = {v: i for i, v in enumerate(dag.vertices)}
    return sorted(dag.vertices, key=lambda v: (dag.wcet(v), indices[v]))


#: Named priority orders accepted by :func:`list_schedule`.
#: ``"topological"`` is the DAG's own (deterministic) vertex order,
#: ``"longest_path"`` is the classic critical-path / HLF heuristic.
PRIORITY_ORDERS: dict[str, Callable[[DAG], list[VertexId]]] = {
    "topological": _order_given,
    "longest_path": _order_longest_path,
    "largest_wcet": _order_largest_wcet,
    "smallest_wcet": _order_smallest_wcet,
}


def priority_list(dag: DAG, order: str | Sequence[VertexId]) -> list[VertexId]:
    """Resolve *order* to an explicit priority list over the DAG's vertices.

    *order* is either a key of :data:`PRIORITY_ORDERS` or an explicit
    sequence containing every vertex exactly once.
    """
    if isinstance(order, str):
        try:
            return PRIORITY_ORDERS[order](dag)
        except KeyError:
            raise AnalysisError(
                f"unknown priority order {order!r}; available: "
                f"{sorted(PRIORITY_ORDERS)}"
            ) from None
    explicit = list(order)
    given = Counter(explicit)
    expected = Counter(dag.vertices)
    if given != expected:
        missing = sorted(repr(v) for v in (expected - given))
        duplicated = sorted(repr(v) for (v, c) in given.items() if c > 1)
        unknown = sorted(repr(v) for v in (given - expected) if v not in expected)
        problems = []
        if missing:
            problems.append(f"missing {', '.join(missing)}")
        if duplicated:
            problems.append(f"duplicated {', '.join(duplicated)}")
        if unknown:
            problems.append(f"unknown {', '.join(unknown)}")
        raise AnalysisError(
            "explicit priority list must contain every DAG vertex exactly "
            f"once: {'; '.join(problems)}"
        )
    return explicit


@dataclass(frozen=True)
class PreparedLS:
    """Per-``(dag, order)`` LS inputs hoisted out of repeated runs.

    MINPROCS calls :func:`list_schedule` once per candidate cluster size;
    the priority ranks and the indegree template depend only on the DAG and
    the order, so they are computed once and passed through (the kernel path
    gets the same hoist from :class:`~repro.core.kernels.CompiledDAG`).
    """

    dag: DAG
    prio: dict[VertexId, int]
    indegree: dict[VertexId, int]


def prepare_ls(dag: DAG, order: str | Sequence[VertexId]) -> PreparedLS:
    """Precompute the priority ranks and indegree template for *dag*/*order*."""
    prio = {v: i for i, v in enumerate(priority_list(dag, order))}
    indegree = {v: len(dag.predecessors(v)) for v in dag.vertices}
    return PreparedLS(dag=dag, prio=prio, indegree=indegree)


def compiled_priority(
    compiled: CompiledDAG, dag: DAG, order: str | Sequence[VertexId]
) -> list[int]:
    """Index-based priority ranks for *order* on the compiled artifact.

    Named orders come from the artifact's memoized permutations; explicit
    sequences are validated by :func:`priority_list` and mapped to indices.
    """
    if isinstance(order, str):
        return compiled.priority(order)
    explicit = priority_list(dag, order)
    prio = [0] * len(explicit)
    for rank, v in enumerate(explicit):
        prio[compiled.index[v]] = rank
    return prio


def list_schedule(
    dag: DAG,
    processors: int,
    order: str | Sequence[VertexId] = "longest_path",
    wcets: dict[VertexId, float] | None = None,
    prepared: PreparedLS | None = None,
) -> Schedule:
    """Schedule one dag-job on *processors* identical processors with LS.

    Parameters
    ----------
    dag:
        The precedence graph.
    processors:
        Number of identical processors (``>= 1``).
    order:
        Priority order; a key of :data:`PRIORITY_ORDERS` or an explicit
        vertex sequence.  The default critical-path order is a good general
        heuristic; any order satisfies Graham's bound.
    wcets:
        Optional override of per-vertex execution times (used by the anomaly
        demonstration and the simulator's what-if analysis).  Defaults to the
        DAG's WCETs.
    prepared:
        Optional :func:`prepare_ls` result for *dag*; supersedes *order* and
        skips the per-call priority sort and indegree scan (MINPROCS's
        kernel-off hoist).

    Returns
    -------
    Schedule
        A validated non-preemptive template schedule.

    When the compiled kernels are enabled (the default) and no *wcets*
    override is given, the run is executed by :func:`repro.core.kernels.ls_run`
    over the DAG's memoized :class:`~repro.core.kernels.CompiledDAG`; the
    resulting schedule is bit-identical to this module's reference loop
    (see :mod:`tests.test_kernels`).
    """
    if processors < 1:
        raise AnalysisError(f"processor count must be >= 1, got {processors}")
    if prepared is not None and prepared.dag is not dag:
        raise AnalysisError("prepared LS inputs belong to a different DAG")
    if _metrics.enabled:
        _metrics.incr("list_schedule_invocations")
        _metrics.incr("list_schedule_vertices", len(dag))

    if wcets is None and prepared is None and _kernel_flags.enabled:
        compiled = _kernels.compile_dag(dag)
        prio_ranks = compiled_priority(compiled, dag, order)
        _, raw = _kernels.ls_run(compiled, processors, prio_ranks)
        schedule = _kernels.build_schedule(dag, compiled, processors, raw)
        schedule.validate()
        return schedule

    if wcets is None:
        times = dag.wcets
    else:
        times = dict(wcets)
        missing = [v for v in dag.vertices if v not in times]
        if missing:
            raise AnalysisError(f"missing execution times for {missing!r}")

    if prepared is not None:
        prio = prepared.prio
        indegree = dict(prepared.indegree)
    else:
        prio = {v: i for i, v in enumerate(priority_list(dag, order))}
        indegree = {v: len(dag.predecessors(v)) for v in dag.vertices}

    # Ready jobs keyed by priority; running jobs keyed by completion time.
    ready: list[tuple[int, VertexId]] = [
        (prio[v], v) for v in dag.vertices if indegree[v] == 0
    ]
    heapq.heapify(ready)
    tie = itertools.count()
    running: list[tuple[float, int, VertexId]] = []
    idle = processors
    now = 0.0
    slots: list[Slot] = []
    assigned_proc: dict[VertexId, int] = {}
    free_procs = list(range(processors - 1, -1, -1))

    scheduled = 0
    total = len(dag)
    while scheduled < total:
        # Start every ready job we have a processor for, highest priority first.
        while ready and idle > 0:
            _, v = heapq.heappop(ready)
            proc = free_procs.pop()
            assigned_proc[v] = proc
            end = now + times[v]
            slots.append(Slot(start=now, end=end, processor=proc, vertex=v))
            heapq.heappush(running, (end, next(tie), v))
            idle -= 1
            scheduled += 1
        if scheduled >= total:
            break
        if not running:
            raise AnalysisError(
                "LS deadlocked: no running job but unscheduled vertices remain"
            )
        # Advance to the next completion instant; retire *all* jobs finishing
        # then, releasing successors, before the next assignment round.
        now = running[0][0]
        while running and running[0][0] <= now:
            _, _, done = heapq.heappop(running)
            free_procs.append(assigned_proc[done])
            idle += 1
            for succ in dag.successors(done):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, (prio[succ], succ))

    schedule = Schedule(dag, slots, processors)
    if wcets is None:
        schedule.validate()
    return schedule


def graham_makespan_bound(dag: DAG, processors: int) -> float:
    """Graham's bound on the makespan of *any* LS schedule::

        makespan <= len + (vol - len) / m

    Combined with the trivial lower bounds ``OPT >= len`` and
    ``OPT >= vol / m`` this yields LS's ``(2 - 1/m)`` speedup bound.
    """
    if processors < 1:
        raise AnalysisError(f"processor count must be >= 1, got {processors}")
    span = dag.longest_chain_length
    return span + (dag.volume - span) / processors


def makespan_lower_bound(dag: DAG, processors: int) -> float:
    """``max(len, vol / m)`` -- a lower bound on the makespan achievable by
    any scheduler (even preemptive and clairvoyant) on *processors* unit-speed
    processors."""
    if processors < 1:
        raise AnalysisError(f"processor count must be >= 1, got {processors}")
    return max(dag.longest_chain_length, dag.volume / processors)


def graham_anomaly_instance() -> tuple[DAG, DAG, list[int], int]:
    """Graham's classic timing-anomaly instance.

    Returns ``(dag, dag_reduced, priority, m)`` where scheduling *dag* on
    ``m = 3`` processors with the given priority list yields makespan 12, yet
    *dag_reduced* -- the same DAG with every execution time shrunk by one unit
    -- yields makespan 13.  This is why the paper replays the stored template
    ``sigma_i`` at run time instead of re-running LS online (footnote 2).
    """
    edges = [(1, 9), (4, 5), (4, 6), (4, 7), (4, 8)]
    wcets = {1: 3, 2: 2, 3: 2, 4: 2, 5: 4, 6: 4, 7: 4, 8: 4, 9: 9}
    reduced = {v: w - 1 for v, w in wcets.items()}
    dag = DAG(wcets, edges)
    dag_reduced = DAG(reduced, edges)
    return dag, dag_reduced, [1, 2, 3, 4, 5, 6, 7, 8, 9], 3
