"""Procedure PARTITION (Figure 4 of the paper).

PARTITION places the low-density tasks -- each collapsed to a three-parameter
sporadic task ``(vol_i, D_i, T_i)`` -- onto the ``m_r`` shared processors.
Following Baruah & Fisher (IEEE TC 2006), tasks are considered in
non-decreasing deadline order and assigned first-fit; task ``tau_i`` fits on
processor ``k`` if the ``DBF*``-approximated demand already on ``k`` leaves
room for ``tau_i``'s volume by its deadline::

    D_i - sum_{tau_j in tau(k)} DBF*(tau_j, D_i)  >=  vol_i        (demand)

and the processor's long-run rate is not overcommitted::

    1 - sum_{tau_j in tau(k)} u_j  >=  u_i                         (rate)

(The paper's Figure 4 shows the demand condition; the rate condition is part
of the underlying Baruah-Fisher algorithm [7] whose Corollary 1 the paper's
Lemma 2 cites, and is what makes the deadline-ordered check at the single
point ``t = D_i`` sound for all later instants.)

Each shared processor then runs preemptive uniprocessor EDF at run time.

For the ablation experiment (EXP-F) the module also exposes alternative fit
strategies, orderings and admission tests; :func:`partition` with default
arguments is exactly the paper's algorithm.

The ``DBF*`` admission probes are answered by per-processor
:class:`~repro.core.shard.ShardState` ledgers; with the compiled kernels
enabled (:mod:`repro.core.kernels`, the default) the all-points probe's
first-fit scans run as one vectorized pass per processor and
:meth:`PartitionResult.verify` with ``exact=True`` uses the QPA oracle --
both bit-identical to the scalar reference paths.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import AnalysisError
from repro.core import dbf as dbf_mod
from repro.core.shard import ShardState
from repro.model.sporadic import SporadicTask
from repro.model.task import SporadicDAGTask
from repro.obs.events import PartitionAttempt, Rejection, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics

_log = get_logger(__name__)

__all__ = [
    "FitStrategy",
    "TaskOrder",
    "AdmissionTest",
    "PartitionResult",
    "partition",
    "partition_sporadic",
]

_TOL = 1e-9


class FitStrategy(Enum):
    """How to pick among processors that can accept a task."""

    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"  # least remaining demand slack after placement
    WORST_FIT = "worst_fit"  # most remaining demand slack after placement


class TaskOrder(Enum):
    """The order in which tasks are considered for placement."""

    DEADLINE = "deadline"  # non-decreasing D_i -- the paper's order
    DENSITY = "density"  # non-increasing density
    UTILIZATION = "utilization"  # non-increasing utilization
    GIVEN = "given"  # input order, unmodified


class AdmissionTest(Enum):
    """The per-processor schedulability condition used during placement."""

    DBF_APPROX = "dbf_approx"  # the paper's DBF* + rate conditions
    DBF_APPROX_ALL_POINTS = "dbf_approx_all_points"  # DBF* at every affected
    # test point: order-independently sound (the online controller's probe)
    DBF_EXACT = "dbf_exact"  # exact processor-demand criterion (slow)
    DENSITY = "density"  # total density <= 1 (crudest)


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning attempt.

    Attributes
    ----------
    success:
        Whether every task was placed.
    assignment:
        ``assignment[k]`` is the tuple of tasks placed on shared processor
        ``k`` (indices ``0 .. processors-1``), in placement order.
    failed_task:
        The first task that could not be placed (``None`` on success).
    processors:
        Number of shared processors offered.
    """

    success: bool
    assignment: tuple[tuple[SporadicTask, ...], ...]
    processors: int
    failed_task: SporadicTask | None = None
    dag_tasks: dict[str, SporadicDAGTask] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def used_processors(self) -> int:
        """Number of shared processors with at least one task."""
        return sum(1 for bucket in self.assignment if bucket)

    def processor_of(self, task: SporadicTask) -> int:
        """Index of the processor holding *task*."""
        for k, bucket in enumerate(self.assignment):
            if task in bucket:
                return k
        raise AnalysisError(f"task {task.name or task!r} is not in this partition")

    def verify(self, exact: bool = False) -> bool:
        """Re-check schedulability of every processor's bucket.

        With ``exact=True`` uses the pseudo-polynomial processor-demand
        criterion (QPA-accelerated when the compiled kernels are on);
        otherwise the ``DBF*`` test.  Since ``DBF*`` dominates ``dbf``,
        approximate acceptance implies exact schedulability.
        """
        test = dbf_mod.edf_exact_test if exact else dbf_mod.edf_approx_test
        return all(test(list(bucket)) for bucket in self.assignment)


def _fits_exact(bucket: list[SporadicTask], task: SporadicTask) -> bool:
    return dbf_mod.edf_exact_test(bucket + [task])


def _fits_density(bucket: list[SporadicTask], task: SporadicTask) -> bool:
    return sum(t.density for t in bucket) + task.density <= 1.0 + _TOL


_LIST_FIT_TESTS = {
    AdmissionTest.DBF_EXACT: _fits_exact,
    AdmissionTest.DENSITY: _fits_density,
}

#: Admission tests answered by the incremental per-processor demand ledgers.
_SHARD_FIT_TESTS = (AdmissionTest.DBF_APPROX, AdmissionTest.DBF_APPROX_ALL_POINTS)


def _slack_after(bucket: list[SporadicTask], task: SporadicTask) -> float:
    """Remaining rate headroom if *task* joins *bucket* (for best/worst fit)."""
    return 1.0 - sum(t.utilization for t in bucket) - task.utilization


def _rejection_detail(
    buckets: list[list[SporadicTask]], task: SporadicTask
) -> dict:
    """Quantify the violated placement bound for every shared processor.

    For each processor: the DBF*-demand slack ``D_i - demand(D_i) - C_i``
    and the rate slack ``1 - U(k) - u_i`` (Figure 4's two conditions); the
    task fits where both are non-negative, so on rejection every processor
    shows at least one negative slack.
    """
    per_processor = []
    for k, bucket in enumerate(buckets):
        demand = dbf_mod.total_dbf_approx(bucket, task.deadline)
        per_processor.append(
            {
                "processor": k,
                "demand_slack": task.deadline - demand - task.wcet,
                "rate_slack": 1.0 - sum(t.utilization for t in bucket)
                - task.utilization,
            }
        )
    return {
        "deadline": task.deadline,
        "wcet": task.wcet,
        "utilization": task.utilization,
        "best_demand_slack": max(
            (p["demand_slack"] for p in per_processor), default=None
        ),
        "best_rate_slack": max(
            (p["rate_slack"] for p in per_processor), default=None
        ),
        "per_processor": per_processor,
    }


def _sorted_tasks(
    tasks: Sequence[SporadicTask], order: TaskOrder
) -> list[SporadicTask]:
    indexed = list(enumerate(tasks))
    if order is TaskOrder.DEADLINE:
        indexed.sort(key=lambda pair: (pair[1].deadline, pair[0]))
    elif order is TaskOrder.DENSITY:
        indexed.sort(key=lambda pair: (-pair[1].density, pair[0]))
    elif order is TaskOrder.UTILIZATION:
        indexed.sort(key=lambda pair: (-pair[1].utilization, pair[0]))
    return [task for _, task in indexed]


def partition_sporadic(
    tasks: Sequence[SporadicTask],
    processors: int,
    order: TaskOrder = TaskOrder.DEADLINE,
    fit: FitStrategy = FitStrategy.FIRST_FIT,
    admission: AdmissionTest = AdmissionTest.DBF_APPROX,
) -> PartitionResult:
    """Partition three-parameter sporadic tasks onto *processors* EDF processors.

    With default arguments this is exactly PARTITION of the paper's Figure 4
    (deadline-ordered first-fit with the ``DBF*`` admission test); the other
    enum values drive the EXP-F ablation.

    The function never raises on an unplaceable task -- it returns a
    :class:`PartitionResult` with ``success=False`` and the offending task,
    mirroring the pseudo-code's ``return FAILURE``.
    """
    if processors < 0:
        raise AnalysisError(f"processor count must be >= 0, got {processors}")
    ctx = current_context()
    buckets: list[list[SporadicTask]] = [[] for _ in range(processors)]
    # The DBF*-based tests are answered by incremental per-processor demand
    # ledgers (O(log bucket) per probe) instead of re-scanning every bucket.
    if admission in _SHARD_FIT_TESTS:
        shards = [ShardState() for _ in range(processors)]
        if admission is AdmissionTest.DBF_APPROX:
            def fits(k: int, task: SporadicTask) -> bool:
                return shards[k].fits_at_deadline(task)
        else:
            def fits(k: int, task: SporadicTask) -> bool:
                return shards[k].fits_all_points(task)
    else:
        shards = None
        list_fits = _LIST_FIT_TESTS[admission]

        def fits(k: int, task: SporadicTask) -> bool:
            return list_fits(buckets[k], task)

    for rank, task in enumerate(_sorted_tasks(tasks, order)):
        if _metrics.enabled:
            _metrics.incr("partition_placement_attempts")
        candidates = [k for k in range(processors) if fits(k, task)]
        if not candidates:
            name = task.name or repr(task)
            if ctx is not None:
                ctx.record(
                    PartitionAttempt(
                        task=name,
                        deadline=task.deadline,
                        wcet=task.wcet,
                        utilization=task.utilization,
                        processor=None,
                        candidates=0,
                        admitted=False,
                    )
                )
                ctx.record(
                    Rejection(
                        phase="partition",
                        reason="no_processor_fits",
                        task=name,
                        detail=_rejection_detail(buckets, task),
                    )
                )
            _log.info(
                "PARTITION reject: %s (D=%g, C=%g, u=%.3f) fits none of %d "
                "shared processors",
                name, task.deadline, task.wcet, task.utilization, processors,
            )
            return PartitionResult(
                success=False,
                assignment=tuple(tuple(b) for b in buckets),
                processors=processors,
                failed_task=task,
            )
        if fit is FitStrategy.FIRST_FIT:
            chosen = candidates[0]
        elif fit is FitStrategy.BEST_FIT:
            chosen = min(candidates, key=lambda k: _slack_after(buckets[k], task))
        else:  # WORST_FIT
            chosen = max(candidates, key=lambda k: _slack_after(buckets[k], task))
        if ctx is not None:
            ctx.record(
                PartitionAttempt(
                    task=task.name or repr(task),
                    deadline=task.deadline,
                    wcet=task.wcet,
                    utilization=task.utilization,
                    processor=chosen,
                    candidates=len(candidates),
                    admitted=True,
                )
            )
        _log.debug(
            "PARTITION fit: %s -> shared P%d (%d/%d candidates)",
            task.name or repr(task), chosen, len(candidates), processors,
        )
        buckets[chosen].append(task)
        if shards is not None:
            shards[chosen].add(task, rank)
    return PartitionResult(
        success=True,
        assignment=tuple(tuple(b) for b in buckets),
        processors=processors,
    )


def partition(
    tasks: Sequence[SporadicDAGTask],
    processors: int,
    order: TaskOrder = TaskOrder.DEADLINE,
    fit: FitStrategy = FitStrategy.FIRST_FIT,
    admission: AdmissionTest = AdmissionTest.DBF_APPROX,
) -> PartitionResult:
    """PARTITION(tau_low, m_r): place low-density sporadic DAG tasks.

    Each DAG task is first collapsed to its three-parameter equivalent
    ``(vol_i, D_i, T_i)`` (a task confined to one processor cannot exploit
    internal parallelism -- Section IV-B), then placed with
    :func:`partition_sporadic`.  The result's ``dag_tasks`` maps sporadic
    task names back to the originating DAG tasks.

    Raises
    ------
    AnalysisError
        If any input task is high-density (``delta_i >= 1``): such a task can
        never share a processor and belongs in the MINPROCS phase.
    """
    for i, task in enumerate(tasks):
        if task.is_high_density:
            raise AnalysisError(
                f"PARTITION received high-density task "
                f"{task.name or f'#{i}'} (density {task.density:.3f} >= 1)"
            )
    named = []
    back: dict[str, SporadicDAGTask] = {}
    for i, task in enumerate(tasks):
        sporadic = task.to_sporadic()
        if not sporadic.name:
            sporadic = SporadicTask(
                wcet=sporadic.wcet,
                deadline=sporadic.deadline,
                period=sporadic.period,
                name=f"task#{i}",
            )
        named.append(sporadic)
        back[sporadic.name] = task
    result = partition_sporadic(
        named, processors, order=order, fit=fit, admission=admission
    )
    return PartitionResult(
        success=result.success,
        assignment=result.assignment,
        processors=result.processors,
        failed_task=result.failed_task,
        dag_tasks=back,
    )
