"""Demand-bound-function machinery for uniprocessor EDF.

The PARTITION phase assigns each low-density task to a shared processor that
runs preemptive uniprocessor EDF.  This module provides:

* aggregate exact ``dbf`` / approximate ``DBF*`` demand of a set of sporadic
  tasks (Eq. (1) of the paper; Baruah, Mok & Rosier 1990; Baruah & Fisher
  2006);
* the *exact* processor-demand schedulability test for EDF on one processor,
  accelerated with the standard busy-period/testing-interval bound; and
* the approximate (polynomial-time) DBF*-based test used by PARTITION's
  admission logic.

These are the substrate on which Lemma 2 of the paper (the ``3 - 1/m``
partitioning speedup) stands.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import AnalysisError
from repro.core import kernels as _kernels
from repro.core.cache import caches as _caches
from repro.core.kernels import flags as _kernel_flags
from repro.model.sporadic import SporadicTask
from repro.obs.metrics import metrics as _metrics

__all__ = [
    "total_dbf",
    "total_dbf_approx",
    "edf_density_test",
    "edf_approx_test",
    "edf_exact_test",
    "minimum_speed_exact",
    "testing_interval_bound",
    "demand_breakpoints",
]

_TOL = 1e-9


def total_dbf(tasks: Iterable[SporadicTask], t: float) -> float:
    """Exact aggregate demand ``sum_i dbf(tau_i, t)``."""
    if _metrics.enabled:
        _metrics.incr("dbf_exact_evaluations")
    return sum(task.dbf(t) for task in tasks)


def total_dbf_approx(tasks: Iterable[SporadicTask], t: float) -> float:
    """Approximate aggregate demand ``sum_i DBF*(tau_i, t)``.

    When the analysis caches (:mod:`repro.core.cache`) are enabled, each
    per-task ``DBF*`` value is memoized by ``(C, D, T, t)``; summation order
    is unchanged, so cached and uncached totals are bit-identical.
    """
    if _metrics.enabled:
        _metrics.incr("dbf_star_evaluations")
    if _caches.enabled:
        return sum(_caches.dbf_star_value(task, t) for task in tasks)
    return sum(task.dbf_approx(t) for task in tasks)


def edf_density_test(tasks: Sequence[SporadicTask]) -> bool:
    """Sufficient uniprocessor EDF test: total density at most one.

    The crudest of the three tests; used only as a comparison point in the
    partitioning ablation experiment.
    """
    return sum(t.density for t in tasks) <= 1.0 + _TOL


def edf_approx_test(tasks: Sequence[SporadicTask]) -> bool:
    """Sufficient uniprocessor EDF test based on ``DBF*``.

    A set of sporadic tasks is EDF-schedulable on a preemptive unit-speed
    processor if ``sum_i DBF*(tau_i, t) <= t`` for all ``t >= 0``.  Because
    every ``DBF*`` is piecewise linear with exactly one breakpoint (at its
    deadline) and slopes sum to ``U <= 1`` when the test can pass at all, it
    suffices to check the inequality at each task's relative deadline, plus
    the slope condition ``U <= 1``.

    With the compiled kernels enabled (the default) all deadlines are
    checked in one vectorized ``DBF*`` pass; the totals -- and hence the
    verdict -- are bit-identical to the scalar loop.
    """
    if sum(t.utilization for t in tasks) > 1.0 + _TOL:
        return False
    points = {t.deadline for t in tasks}
    if _kernel_flags.enabled and points:
        if _metrics.enabled:
            _metrics.incr("dbf_star_evaluations", len(points))
        return _kernels.dbf_star_all_within(tasks, list(points), _TOL)
    for point in points:
        if total_dbf_approx(tasks, point) > point + _TOL:
            return False
    return True


def testing_interval_bound(tasks: Sequence[SporadicTask]) -> float:
    """Upper bound on the interval the exact EDF test must examine.

    For a constrained- or arbitrary-deadline sporadic set with total
    utilization ``U < 1``, if ``dbf`` exceeds supply anywhere it does so
    before::

        L = max( max_i D_i,  (sum_i (T_i - D_i) * u_i) / (1 - U) )

    (Baruah, Mok & Rosier 1990).  For ``U >= 1`` the set is trivially
    infeasible on one processor unless ``U == 1`` and the demand pattern is
    exactly periodic; we return the hyperperiod-style fallback
    ``max_i D_i + 2 * lcm-ish`` only when ``U == 1`` with rational periods --
    in practice the callers reject ``U > 1 - eps`` up front.
    """
    if not tasks:
        return 0.0
    utilization = sum(t.utilization for t in tasks)
    max_deadline = max(t.deadline for t in tasks)
    if utilization >= 1.0 - 1e-12:
        # Degenerate: fall back to a generous multiple of the largest period.
        # The exact test's callers treat U > 1 as an immediate failure.
        return max_deadline + 2.0 * sum(t.period for t in tasks)
    slack_term = sum((t.period - t.deadline) * t.utilization for t in tasks)
    return max(max_deadline, slack_term / (1.0 - utilization))


def demand_breakpoints(
    tasks: Sequence[SporadicTask], horizon: float
) -> list[float]:
    """All absolute deadlines in ``(0, horizon]`` of the synchronous pattern.

    The exact processor-demand criterion only needs to be checked at these
    points, where the step function ``sum_i dbf(t)`` changes value.
    """
    points: set[float] = set()
    for task in tasks:
        points.update(task.deadlines_in(horizon))
    return sorted(points)


def edf_exact_test(
    tasks: Sequence[SporadicTask], horizon: float | None = None
) -> bool:
    """Exact uniprocessor EDF schedulability (processor-demand criterion).

    A sporadic task set is EDF-schedulable on one preemptive unit-speed
    processor iff ``U <= 1`` and ``sum_i dbf(tau_i, t) <= t`` for every
    ``t`` in the testing interval.  This test is exact but pseudo-polynomial;
    PARTITION uses :func:`edf_approx_test` instead, and the experiments use
    this as the ground-truth oracle.

    With the compiled kernels enabled (the default) the interval is decided
    by QPA (:func:`repro.core.kernels.qpa_exact_test`, Zhang & Burns 2009)
    instead of scanning every breakpoint; the verdicts are identical (the
    equivalence argument is in the QPA docstring and
    ``docs/PERFORMANCE.md``).

    Parameters
    ----------
    tasks:
        The task set sharing the processor.
    horizon:
        Optional override of the testing interval (useful in tests).

    Raises
    ------
    AnalysisError
        If *horizon* is negative.
    """
    if not tasks:
        return True
    if sum(t.utilization for t in tasks) > 1.0 + _TOL:
        return False
    bound = testing_interval_bound(tasks) if horizon is None else horizon
    if bound < 0:
        raise AnalysisError(f"testing horizon must be >= 0, got {bound}")
    if _kernel_flags.enabled:
        return _kernels.qpa_exact_test(tasks, bound, total_dbf, _TOL)
    for point in demand_breakpoints(tasks, bound):
        if total_dbf(tasks, point) > point + _TOL:
            return False
    return True


def minimum_speed_exact(
    tasks: Sequence[SporadicTask], tolerance: float = 1e-6
) -> float:
    """The minimum processor speed at which *tasks* are EDF-schedulable.

    EDF on one processor is speed-monotone (demand scales as ``1/s``), so
    this binary-searches the smallest speed for which the exact
    processor-demand test passes.  The bracket is ``[U, delta_sum]``: speed
    below the utilization is never enough, and speed equal to the total
    density always suffices (``dbf(t) <= delta_sum * t``).
    """
    if not tasks:
        return 0.0
    low = sum(t.utilization for t in tasks)
    high = sum(t.density for t in tasks)
    if high <= 0:
        return 0.0
    if edf_exact_test([t.scaled(max(low, 1e-12)) for t in tasks]):
        return low
    while high - low > tolerance * max(1.0, high):
        mid = 0.5 * (low + high)
        if edf_exact_test([t.scaled(mid) for t in tasks]):
            high = mid
        else:
            low = mid
    return high
