"""Optional numba tier for the two hottest kernels (``REPRO_KERNELS=jit``).

The NumPy tier of :mod:`repro.core.kernels` already removed the per-call
object churn from the analysis hot loops, but two of them remain pure Python
at their core: the :func:`~repro.core.kernels.ls_run` int-heap loop (executed
once per MINPROCS attempt) and the per-task accumulation inside
:func:`~repro.core.kernels.dbf_star_totals`.  This module compiles both with
numba under the same non-negotiable contract as every other kernel tier:

    **bit-identical results.**  The jit ``ls_run`` mirrors the Python heap
    loop operation-for-operation; because every heap key is unique (priority
    ranks are a permutation, running jobs carry a tie counter), the pop
    sequence of *any* correct binary heap is fully determined by the keys,
    so the assignment order -- and with it every ``now + wcet`` float -- is
    identical.  The jit ``dbf_star_totals`` performs the same per-task
    sequential accumulation with the same IEEE double expressions (kept in
    separate statements so LLVM cannot contract ``u * (t - d) + c`` into an
    FMA, which would round differently).

Availability is strictly optional: when numba is not importable every entry
point returns ``None`` and the callers in :mod:`repro.core.kernels` fall
through to the NumPy tier -- ``REPRO_KERNELS=jit`` on a numba-less machine
behaves exactly like ``REPRO_KERNELS=1``.  (A Cython fallback would slot in
behind the same ``available()`` probe; numba is preferred because it needs
no build step.)  Compilation is lazy -- the first jit-backed call pays the
LLVM compile -- and :func:`warm` triggers it eagerly, which the admission
server does at startup so no client request eats the compile latency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["available", "ls_run", "dbf_star_totals", "warm"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    _NUMBA = False

    def _njit(*args, **kwargs):  # type: ignore[misc]
        """No-op decorator so the module still imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


def available() -> bool:
    """Whether the numba tier can actually answer (numba importable)."""
    return _NUMBA


# ---------------------------------------------------------------------------
# compiled primitives
# ---------------------------------------------------------------------------

@_njit(cache=True)
def _heap_push_int(heap, size, value):  # pragma: no cover - jit body
    heap[size] = value
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if heap[parent] > heap[i]:
            heap[parent], heap[i] = heap[i], heap[parent]
            i = parent
        else:
            break
    return size + 1


@_njit(cache=True)
def _heap_pop_int(heap, size):  # pragma: no cover - jit body
    top = heap[0]
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        smallest = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            smallest = right
        if heap[smallest] < heap[i]:
            heap[i], heap[smallest] = heap[smallest], heap[i]
            i = smallest
        else:
            break
    return top, size


@_njit(cache=True)
def _run_less(ends, ties, a, b):  # pragma: no cover - jit body
    if ends[a] < ends[b]:
        return True
    if ends[a] == ends[b] and ties[a] < ties[b]:
        return True
    return False


@_njit(cache=True)
def _run_swap(ends, ties, verts, a, b):  # pragma: no cover - jit body
    ends[a], ends[b] = ends[b], ends[a]
    ties[a], ties[b] = ties[b], ties[a]
    verts[a], verts[b] = verts[b], verts[a]


@_njit(cache=True)
def _run_push(ends, ties, verts, size, end, tie, vert):  # pragma: no cover
    ends[size] = end
    ties[size] = tie
    verts[size] = vert
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if _run_less(ends, ties, i, parent):
            _run_swap(ends, ties, verts, i, parent)
            i = parent
        else:
            break
    return size + 1


@_njit(cache=True)
def _run_pop(ends, ties, verts, size):  # pragma: no cover - jit body
    vert = verts[0]
    size -= 1
    ends[0] = ends[size]
    ties[0] = ties[size]
    verts[0] = verts[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        smallest = left
        right = left + 1
        if right < size and _run_less(ends, ties, right, left):
            smallest = right
        if _run_less(ends, ties, smallest, i):
            _run_swap(ends, ties, verts, i, smallest)
            i = smallest
        else:
            break
    return vert, size


@_njit(cache=True)
def _ls_run_impl(  # pragma: no cover - jit body
    wcet, indptr, succ, indeg0, prio, inv_prio, processors
):
    n = wcet.shape[0]
    indegree = indeg0.copy()
    ready = np.empty(n, np.int64)
    rsize = 0
    for i in range(n):
        if indegree[i] == 0:
            rsize = _heap_push_int(ready, rsize, prio[i])
    run_end = np.empty(n, np.float64)
    run_tie = np.empty(n, np.int64)
    run_vert = np.empty(n, np.int64)
    qsize = 0
    tie = 0
    idle = processors
    now = 0.0
    raw_vert = np.empty(n, np.int64)
    raw_start = np.empty(n, np.float64)
    raw_end = np.empty(n, np.float64)
    raw_proc = np.empty(n, np.int64)
    assigned = np.zeros(n, np.int64)
    free = np.empty(processors, np.int64)
    for k in range(processors):
        free[k] = processors - 1 - k
    fsize = processors
    makespan = 0.0
    scheduled = 0
    while scheduled < n:
        while rsize > 0 and idle > 0:
            p, rsize = _heap_pop_int(ready, rsize)
            i = inv_prio[p]
            fsize -= 1
            proc = free[fsize]
            assigned[i] = proc
            end = now + wcet[i]
            raw_vert[scheduled] = i
            raw_start[scheduled] = now
            raw_end[scheduled] = end
            raw_proc[scheduled] = proc
            if end > makespan:
                makespan = end
            qsize = _run_push(run_end, run_tie, run_vert, qsize, end, tie, i)
            tie += 1
            idle -= 1
            scheduled += 1
        if scheduled >= n:
            break
        if qsize == 0:
            # Deadlock: unscheduled vertices but nothing running.  Signalled
            # via a negative makespan; the wrapper raises the same
            # AnalysisError as the Python loop.
            return -1.0, raw_vert, raw_start, raw_end, raw_proc
        now = run_end[0]
        while qsize > 0 and run_end[0] <= now:
            done, qsize = _run_pop(run_end, run_tie, run_vert, qsize)
            free[fsize] = assigned[done]
            fsize += 1
            idle += 1
            for k in range(indptr[done], indptr[done + 1]):
                j = succ[k]
                indegree[j] -= 1
                if indegree[j] == 0:
                    rsize = _heap_push_int(ready, rsize, prio[j])
    return makespan, raw_vert, raw_start, raw_end, raw_proc


@_njit(cache=True)
def _dbf_star_totals_impl(wcet, util, deadline, pts):  # pragma: no cover
    total = np.zeros(pts.shape[0])
    for k in range(wcet.shape[0]):
        c = wcet[k]
        u = util[k]
        d = deadline[k]
        for j in range(pts.shape[0]):
            t = pts[j]
            if t < d:
                total[j] += 0.0
            else:
                # Two statements so LLVM cannot contract the multiply-add
                # into an FMA (which rounds once instead of twice).
                term = u * (t - d)
                total[j] += c + term
    return total


# ---------------------------------------------------------------------------
# wrappers (return None when numba is absent -> callers fall through)
# ---------------------------------------------------------------------------

def _compiled_arrays(compiled):
    """Numpy mirrors of a CompiledDAG's flat lists, cached on the artifact."""
    cached = compiled._jit_arrays
    if cached is not None:
        return cached
    arrays = (
        np.asarray(compiled.wcet, dtype=np.float64),
        np.asarray(compiled.succ_indptr, dtype=np.int64),
        np.asarray(compiled.succ_indices, dtype=np.int64),
        np.asarray(compiled.indegree, dtype=np.int64),
        {},  # per-priority-list (prio array, inverse permutation) cache
    )
    compiled._jit_arrays = arrays
    return arrays


def _priority_arrays(cache: dict, prio: Sequence[int]):
    """``(prio_arr, inv_arr)`` for a priority ranking, cached by identity.

    MINPROCS reuses one memoized priority list across its whole mu-search,
    so an ``id()``-keyed cache avoids re-materializing the arrays per LS
    run; the list is held in the cache entry, keeping the id stable.
    """
    entry = cache.get(id(prio))
    if entry is not None and entry[0] is prio:
        return entry[1], entry[2]
    prio_arr = np.asarray(prio, dtype=np.int64)
    inv = np.empty_like(prio_arr)
    inv[prio_arr] = np.arange(prio_arr.shape[0], dtype=np.int64)
    cache[id(prio)] = (prio, prio_arr, inv)
    return prio_arr, inv


def ls_run(
    compiled, processors: int, prio: Sequence[int]
) -> tuple[float, list[tuple[int, float, float, int]]] | None:
    """Jit-backed Graham LS pass; ``None`` when numba is unavailable."""
    if not _NUMBA:
        return None
    wcet, indptr, succ, indeg, prio_cache = _compiled_arrays(compiled)
    prio_arr, inv = _priority_arrays(prio_cache, prio)
    makespan, rv, rs, re, rp = _ls_run_impl(
        wcet, indptr, succ, indeg, prio_arr, inv, processors
    )
    if makespan < 0.0:
        from repro.errors import AnalysisError

        raise AnalysisError(
            "LS deadlocked: no running job but unscheduled vertices remain"
        )
    raw = [
        (int(rv[k]), float(rs[k]), float(re[k]), int(rp[k]))
        for k in range(rv.shape[0])
    ]
    return float(makespan), raw


def dbf_star_totals(tasks, points) -> np.ndarray | None:
    """Jit-backed ``sum_i DBF*``; ``None`` when numba is unavailable."""
    if not _NUMBA:
        return None
    pts = np.asarray(points, dtype=np.float64)
    wcet = np.empty(len(tasks), np.float64)
    util = np.empty(len(tasks), np.float64)
    deadline = np.empty(len(tasks), np.float64)
    for k, task in enumerate(tasks):
        wcet[k] = task.wcet
        util[k] = task.utilization
        deadline[k] = task.deadline
    return _dbf_star_totals_impl(wcet, util, deadline, pts)


def warm() -> bool:
    """Eagerly compile both jit kernels (lazy otherwise); False if no numba.

    The admission server calls this at startup so the one-off LLVM compile
    happens before the first client request rather than inside it.
    """
    if not _NUMBA:
        return False
    wcet = np.asarray([1.0, 2.0], np.float64)
    indptr = np.asarray([0, 1, 1], np.int64)
    succ = np.asarray([1], np.int64)
    indeg = np.asarray([0, 1], np.int64)
    prio = np.asarray([0, 1], np.int64)
    inv = np.asarray([0, 1], np.int64)
    _ls_run_impl(wcet, indptr, succ, indeg, prio, inv, 2)
    _dbf_star_totals_impl(
        wcet, np.asarray([0.1, 0.2]), np.asarray([4.0, 8.0]),
        np.asarray([1.0, 5.0, 9.0]),
    )
    return True
