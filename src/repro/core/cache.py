"""Memoization of the analysis hot paths (DBF* demand and MINPROCS sizing).

The experiment stack re-evaluates the same pure functions over and over:
``DBF*`` of a sporadic task at a test point (PARTITION probes every shared
processor at every candidate deadline), and MINPROCS cluster sizing of a DAG
(every re-analysis of a system replays the same List Scheduling search).
All are pure functions of their arguments, so this module provides a set of
bounded LRU caches:

``dbf_star``
    keyed by ``(C, D, T, t)`` -- the full argument tuple of
    ``SporadicTask.dbf_approx``;
``minprocs``
    keyed by ``(DAG.digest(), D, order)`` -- one entry per analysed DAG task,
    storing either the minimal fitting cluster (reusable for any processor
    budget at or above it, since the first fitting ``mu`` does not depend on
    the cap) or the largest budget known to be insufficient;
``compiled``
    keyed by ``DAG.digest()`` -- the flat :class:`~repro.core.kernels.CompiledDAG`
    artifact, so digest-equal DAG instances (e.g. rebuilt from a journal or
    shipped to a worker process) share one compilation.

Like :mod:`repro.obs.metrics`, the caches are **disabled by default** and
hot paths guard every lookup with a plain attribute check, so the cost with
caching off is one attribute load and a branch.  The parallel experiment
engine enables them in its worker processes, ``fedcons-experiments`` enables
them unless ``--no-cache`` is given, and benchmarks/tests enable them via
:func:`caching`.

Hit/miss/eviction counts are always tracked on the cache objects (cheap int
adds) and additionally mirrored into the global
:class:`~repro.obs.metrics.MetricsRegistry` (``cache.dbf_star.hits``, ...)
whenever metrics collection is on, so worker-side cache behaviour survives
the parent's metrics merge.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.errors import AnalysisError
from repro.obs.metrics import metrics as _metrics

__all__ = ["MISSING", "LRUCache", "AnalysisCaches", "caches", "caching"]

#: Sentinel returned by :meth:`LRUCache.get` on a miss.
MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction and counters."""

    __slots__ = ("name", "maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize < 1:
            raise AnalysisError(f"cache maxsize must be >= 1, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Any:
        """The cached value for *key*, or the :data:`MISSING` sentinel.

        Counts the lookup and refreshes the entry's recency on a hit.
        """
        value = self._data.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
            if _metrics.enabled:
                _metrics.incr(f"cache.{self.name}.misses")
            return MISSING
        self._data.move_to_end(key)
        self.hits += 1
        if _metrics.enabled:
            _metrics.incr(f"cache.{self.name}.hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert/overwrite *key*, evicting the oldest entry when full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
            if _metrics.enabled:
                _metrics.incr(f"cache.{self.name}.evictions")

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AnalysisCaches:
    """The process-wide trio of analysis caches plus the enable switch."""

    def __init__(
        self,
        dbf_star_size: int = 1 << 17,
        minprocs_size: int = 4096,
        compiled_size: int = 4096,
    ) -> None:
        self.enabled = False
        self.dbf_star = LRUCache("dbf_star", dbf_star_size)
        self.minprocs = LRUCache("minprocs", minprocs_size)
        self.compiled = LRUCache("compiled", compiled_size)

    def enable(self) -> None:
        """Start serving (and filling) both caches."""
        self.enabled = True

    def disable(self) -> None:
        """Stop consulting the caches (entries are kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all entries of every cache."""
        self.dbf_star.clear()
        self.minprocs.clear()
        self.compiled.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters of every cache."""
        for cache in (self.dbf_star, self.minprocs, self.compiled):
            cache.hits = cache.misses = cache.evictions = 0

    def stats(self) -> dict:
        """Per-cache size/hit/miss statistics (JSON-serialisable)."""
        return {
            "enabled": self.enabled,
            "dbf_star": self.dbf_star.stats(),
            "minprocs": self.minprocs.stats(),
            "compiled": self.compiled.stats(),
        }

    # -- the memoized analyses -------------------------------------------

    def dbf_star_value(self, task, t: float) -> float:
        """Memoized ``task.dbf_approx(t)`` keyed by ``(C, D, T, t)``.

        Pure memoization: the returned float is exactly the value the
        uncached call produces, so cached and uncached analyses are
        bit-identical.
        """
        key = (task.wcet, task.deadline, task.period, t)
        value = self.dbf_star.get(key)
        if value is MISSING:
            value = task.dbf_approx(t)
            self.dbf_star.put(key, value)
        return value


#: The process-wide caches every instrumented analysis consults.
caches = AnalysisCaches()


@contextmanager
def caching(clear: bool = True) -> Iterator[AnalysisCaches]:
    """Enable the global :data:`caches` for a scoped block.

    With ``clear=True`` (default) the block starts from empty caches.  The
    previous enabled state is restored afterwards.
    """
    was_enabled = caches.enabled
    if clear:
        caches.clear()
    caches.enable()
    try:
        yield caches
    finally:
        caches.enabled = was_enabled
