"""Procedure MINPROCS (Figure 3 of the paper).

For a high-density constrained-deadline sporadic DAG task ``tau_i``, MINPROCS
finds the minimum number of dedicated processors ``mu`` such that Graham's
List Scheduling produces a template schedule of ``G_i`` with makespan no
larger than ``D_i``.  Since ``D_i <= T_i``, consecutive dag-jobs never
overlap, so a per-dag-job template suffices (Section IV-A).

The search starts at ``ceil(delta_i)`` -- fewer processors cannot possibly
carry a density-``delta_i`` task -- and stops at the number of remaining
processors ``m_r``; if no ``mu <= m_r`` works, the task is unschedulable on
the remaining platform and ``None`` is returned (the paper's ``infinity``).
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.core import kernels as _kernels
from repro.core.cache import MISSING, caches as _caches
from repro.core.kernels import flags as _kernel_flags
from repro.core.list_scheduling import compiled_priority, list_schedule, prepare_ls
from repro.core.schedule import Schedule
from repro.model.dag import VertexId
from repro.model.task import SporadicDAGTask
from repro.obs.events import MinprocsStep, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics
from repro.obs.spans import span as _span

__all__ = ["MinProcsResult", "minprocs", "minprocs_unbounded"]

_log = get_logger(__name__)


@dataclass(frozen=True)
class MinProcsResult:
    """Outcome of a successful MINPROCS call.

    Attributes
    ----------
    processors:
        ``m_i`` -- the number of dedicated processors granted to the task.
    schedule:
        The template schedule ``sigma_i`` replayed at run time.
    attempts:
        How many LS runs the search performed (for complexity experiments).
    """

    processors: int
    schedule: Schedule
    attempts: int


def minprocs(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId] = "longest_path",
) -> MinProcsResult | None:
    """Run MINPROCS(tau_i, m_r): smallest LS cluster meeting the deadline.

    Parameters
    ----------
    task:
        A constrained-deadline sporadic DAG task.  (The procedure is also
        well-defined for low-density tasks; FEDCONS only calls it for
        high-density ones.)
    available:
        ``m_r`` -- the number of processors still unallocated.
    order:
        LS priority order (see :mod:`repro.core.list_scheduling`).  The
        paper leaves the list order open; any order preserves Lemma 1.

    Returns
    -------
    MinProcsResult | None
        ``None`` when no cluster of at most *available* processors yields an
        LS makespan within the deadline (the paper's ``return infinity``).

    Raises
    ------
    AnalysisError
        If the task is not constrained-deadline (the per-dag-job template
        argument breaks down when ``D_i > T_i``), or *available* < 0.
    """
    if available < 0:
        raise AnalysisError(f"available processor count must be >= 0, got {available}")
    if not task.is_constrained_deadline:
        raise AnalysisError(
            f"MINPROCS requires a constrained-deadline task; "
            f"{task.name or task!r} has D > T"
        )
    if task.span > task.deadline:
        # No processor count can beat the critical path.
        return None
    with _span("minprocs", task=task.name or None, available=available) as sp:
        if _caches.enabled:
            result = _minprocs_cached(task, available, order)
        else:
            result = _minprocs_search(task, available, order)
        sp.set(
            fitted=result is not None,
            processors=None if result is None else result.processors,
        )
        return result


def _minprocs_search(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId],
) -> MinProcsResult | None:
    """The uncached MINPROCS search loop (validation already done).

    The per-task LS inputs are hoisted out of the ``mu`` loop: with kernels
    enabled, one :class:`~repro.core.kernels.CompiledDAG` (and its priority
    permutation) backs every attempt and only the *fitting* attempt
    materializes Slot objects; with kernels disabled, the priority list and
    indegree template are still computed once via :func:`prepare_ls` instead
    of once per attempt.  Either way each attempt performs exactly one LS
    run, so ``minprocs_ls_runs``/``list_schedule_*`` counters, trace events
    and the returned ``attempts`` are unchanged.
    """
    ctx = current_context()
    name = task.name or repr(task)
    start = max(1, math.ceil(task.density - 1e-12))
    attempts = 0
    # Matches Schedule.meets_deadline's tolerance.
    deadline_tol = task.deadline + 1e-9
    use_kernel = _kernel_flags.enabled
    # One clock pair for the whole mu-search and bulk counter updates on the
    # way out: per-attempt clock reads would cost a large fraction of one
    # compiled LS run and break the telemetry overhead budget.
    timing = _metrics.enabled
    search_started = time.perf_counter() if timing else 0.0
    if use_kernel:
        compiled = _kernels.compile_dag(task.dag)
        prio_ranks = compiled_priority(compiled, task.dag, order)
        prepared = None
    else:
        compiled = None
        prepared = prepare_ls(task.dag, order)

    def _record_search() -> None:
        _metrics.incr("minprocs_ls_runs", attempts)
        if use_kernel:
            _metrics.incr("list_schedule_invocations", attempts)
            _metrics.incr("list_schedule_vertices", attempts * len(task.dag))
        _metrics.record_time(
            "minprocs.search_seconds", time.perf_counter() - search_started
        )

    for mu in range(start, available + 1):
        attempts += 1
        schedule: Schedule | None
        if use_kernel:
            makespan, raw = _kernels.ls_run(compiled, mu, prio_ranks)
            fits = makespan <= deadline_tol
            schedule = None
        else:
            schedule = list_schedule(task.dag, mu, prepared=prepared)
            makespan = schedule.makespan
            fits = schedule.meets_deadline(task.deadline)
        if ctx is not None:
            ctx.record(
                MinprocsStep(
                    task=name,
                    processors=mu,
                    makespan=makespan,
                    deadline=task.deadline,
                    fits=fits,
                )
            )
        _log.debug(
            "MINPROCS %s: mu=%d makespan=%g deadline=%g -> %s",
            name, mu, makespan, task.deadline,
            "fits" if fits else "too long",
        )
        if fits:
            if timing:
                _record_search()
            if schedule is None:
                schedule = _kernels.build_schedule(task.dag, compiled, mu, raw)
                schedule.validate()
            return MinProcsResult(processors=mu, schedule=schedule, attempts=attempts)
    if timing:
        _record_search()
    _log.debug(
        "MINPROCS %s: no cluster of <= %d processors meets deadline %g",
        name, available, task.deadline,
    )
    return None


def _minprocs_cached(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId],
) -> MinProcsResult | None:
    """MINPROCS answered from the analysis cache where possible.

    The cache key is ``(DAG digest, deadline, order)`` -- deliberately *not*
    the processor budget.  The search scans ``mu = start, start+1, ...`` and
    stops at the first fitting cluster, so the minimal fitting ``mu*`` is a
    property of the task alone: any budget ``>= mu*`` yields the same result
    and any smaller budget yields ``None``.  A cached failure records the
    largest budget searched; larger budgets re-run the search and upgrade
    the entry.

    Cached answers skip the per-``mu`` :class:`MinprocsStep` trace events and
    ``minprocs_ls_runs`` counter updates (no List Scheduling actually runs);
    the returned result is identical to the uncached one, including the
    reconstructed ``attempts`` count.
    """
    key = (
        task.dag.digest(),
        task.deadline,
        order if isinstance(order, str) else tuple(order),
    )
    start = max(1, math.ceil(task.density - 1e-12))
    entry = _caches.minprocs.get(key)
    if entry is not MISSING:
        fitted, payload = entry
        if fitted:
            mu, schedule = payload
            if mu <= available:
                return MinProcsResult(
                    processors=mu, schedule=schedule, attempts=mu - start + 1
                )
            return None
        if available <= payload:  # searched this far before: nothing fits
            return None
    result = _minprocs_search(task, available, order)
    if result is not None:
        _caches.minprocs.put(key, (True, (result.processors, result.schedule)))
    else:
        _caches.minprocs.put(key, (False, available))
    return result


def minprocs_unbounded(
    task: SporadicDAGTask,
    order: str | Sequence[VertexId] = "longest_path",
) -> MinProcsResult | None:
    """MINPROCS with no cap on the cluster size.

    Useful for analysis experiments (Lemma 1 validation): the search always
    terminates by ``mu = |V_i|`` when the task is structurally feasible
    (``len_i <= D_i``) -- with one processor per job every available job
    starts the instant its predecessors finish, so the LS makespan equals the
    critical path length ``len_i``.
    """
    if task.span > task.deadline:
        return None
    return minprocs(task, len(task.dag), order=order)
