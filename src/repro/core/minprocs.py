"""Procedure MINPROCS (Figure 3 of the paper).

For a high-density constrained-deadline sporadic DAG task ``tau_i``, MINPROCS
finds the minimum number of dedicated processors ``mu`` such that Graham's
List Scheduling produces a template schedule of ``G_i`` with makespan no
larger than ``D_i``.  Since ``D_i <= T_i``, consecutive dag-jobs never
overlap, so a per-dag-job template suffices (Section IV-A).

The search starts at ``ceil(delta_i)`` -- fewer processors cannot possibly
carry a density-``delta_i`` task -- and stops at the number of remaining
processors ``m_r``; if no ``mu <= m_r`` works, the task is unschedulable on
the remaining platform and ``None`` is returned (the paper's ``infinity``).

Search strategy
---------------
The paper's Figure 3 scans ``mu`` linearly.  Because the LS makespan over a
fixed priority list is (almost always) non-increasing in the processor
count, the default strategy brackets the first fitting ``mu`` with a
galloping probe sequence and then bisects -- O(log range) LS runs instead of
O(range).  Graham's anomalies mean monotonicity is not a theorem, so every
bracketed search re-checks the makespans it actually observed: any
non-monotone pair triggers a transparent fallback to the full linear scan
(probe results are reused), guaranteeing the returned
:attr:`MinProcsResult.processors` matches Figure 3 whenever an anomaly
manifests among the probed points.  ``REPRO_MU_SEARCH=linear`` forces the
literal Figure 3 scan; either way the reported ``attempts`` stays the
canonical ``mu* - start + 1`` so results are bit-identical across
strategies, while ``ls_runs`` records what the strategy really paid.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.core import kernels as _kernels
from repro.core.cache import MISSING, caches as _caches
from repro.core.kernels import flags as _kernel_flags
from repro.core.list_scheduling import compiled_priority, list_schedule, prepare_ls
from repro.core.schedule import Schedule
from repro.model.dag import VertexId
from repro.model.task import SporadicDAGTask
from repro.obs.events import MinprocsStep, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics
from repro.obs.spans import span as _span

__all__ = ["MinProcsResult", "minprocs", "minprocs_unbounded"]

_log = get_logger(__name__)

#: Search strategy: "bisect" (gallop + binary search, the default) or
#: "linear" (the literal Figure 3 scan).  Module attribute so tests and
#: benchmarks can monkeypatch it without touching the environment.
MU_SEARCH = os.environ.get("REPRO_MU_SEARCH", "bisect").strip().lower() or "bisect"

#: Below this many candidate processor counts the bracketed search cannot
#: beat the linear scan (the gallop alone probes ~log2(range) points), so
#: small searches stay on the legacy loop.
BISECT_MIN_RANGE = 8


@dataclass(frozen=True)
class MinProcsResult:
    """Outcome of a successful MINPROCS call.

    Attributes
    ----------
    processors:
        ``m_i`` -- the number of dedicated processors granted to the task.
    schedule:
        The template schedule ``sigma_i`` replayed at run time.
    attempts:
        The canonical Figure 3 attempt count ``mu* - ceil(delta) + 1`` (how
        many LS runs the paper's linear scan performs).  Identical across
        search strategies, kernel tiers, and cache hits -- complexity
        experiments and bit-identity checks key off this.
    ls_runs:
        How many LS runs the chosen strategy actually performed: equals
        ``attempts`` for the linear scan, O(log range) for the bracketed
        search, ``0`` when answered from the analysis cache, ``None`` only
        for legacy constructors that never measured it.
    """

    processors: int
    schedule: Schedule
    attempts: int
    ls_runs: int | None = None


def minprocs(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId] = "longest_path",
) -> MinProcsResult | None:
    """Run MINPROCS(tau_i, m_r): smallest LS cluster meeting the deadline.

    Parameters
    ----------
    task:
        A constrained-deadline sporadic DAG task.  (The procedure is also
        well-defined for low-density tasks; FEDCONS only calls it for
        high-density ones.)
    available:
        ``m_r`` -- the number of processors still unallocated.
    order:
        LS priority order (see :mod:`repro.core.list_scheduling`).  The
        paper leaves the list order open; any order preserves Lemma 1.

    Returns
    -------
    MinProcsResult | None
        ``None`` when no cluster of at most *available* processors yields an
        LS makespan within the deadline (the paper's ``return infinity``).

    Raises
    ------
    AnalysisError
        If the task is not constrained-deadline (the per-dag-job template
        argument breaks down when ``D_i > T_i``), or *available* < 0.
    """
    if available < 0:
        raise AnalysisError(f"available processor count must be >= 0, got {available}")
    if not task.is_constrained_deadline:
        raise AnalysisError(
            f"MINPROCS requires a constrained-deadline task; "
            f"{task.name or task!r} has D > T"
        )
    if task.span > task.deadline:
        # No processor count can beat the critical path.
        return None
    with _span("minprocs", task=task.name or None, available=available) as sp:
        if _caches.enabled:
            result = _minprocs_cached(task, available, order)
        else:
            result = _minprocs_search(task, available, order)
        sp.set(
            fitted=result is not None,
            processors=None if result is None else result.processors,
        )
        return result


def _minprocs_search(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId],
) -> MinProcsResult | None:
    """The uncached MINPROCS search (validation already done).

    The per-task LS inputs are hoisted out of the ``mu`` probes: with kernels
    enabled, one :class:`~repro.core.kernels.CompiledDAG` (and its priority
    permutation) backs every attempt and only the *fitting* attempt
    materializes Slot objects; with kernels disabled, the priority list and
    indegree template are still computed once via :func:`prepare_ls` instead
    of once per attempt.

    Probe results are memoized per ``mu`` so the anomaly fallback re-uses
    rather than re-runs them; ``minprocs_ls_runs``/``list_schedule_*``
    counters record actual LS work (``ls_runs``), while the returned
    ``attempts`` always reports the canonical linear-scan count.
    """
    ctx = current_context()
    name = task.name or repr(task)
    start = max(1, math.ceil(task.density - 1e-12))
    # Matches Schedule.meets_deadline's tolerance.
    deadline_tol = task.deadline + 1e-9
    use_kernel = _kernel_flags.enabled
    # One clock pair for the whole mu-search and bulk counter updates on the
    # way out: per-attempt clock reads would cost a large fraction of one
    # compiled LS run and break the telemetry overhead budget.
    timing = _metrics.enabled
    search_started = time.perf_counter() if timing else 0.0
    if use_kernel:
        compiled = _kernels.compile_dag(task.dag)
        prio_ranks = compiled_priority(compiled, task.dag, order)
        prepared = None
    else:
        compiled = None
        prepared = prepare_ls(task.dag, order)

    probes: dict[int, tuple[float, bool, object]] = {}
    ls_runs = 0
    last_step_mu = -1

    def _probe(mu: int) -> tuple[float, bool, object]:
        nonlocal ls_runs, last_step_mu
        entry = probes.get(mu)
        if entry is not None:
            return entry
        ls_runs += 1
        payload: object
        if use_kernel:
            makespan, payload = _kernels.ls_run(compiled, mu, prio_ranks)
            fits = makespan <= deadline_tol
        else:
            payload = list_schedule(task.dag, mu, prepared=prepared)
            makespan = payload.makespan
            fits = payload.meets_deadline(task.deadline)
        if ctx is not None:
            ctx.record(
                MinprocsStep(
                    task=name,
                    processors=mu,
                    makespan=makespan,
                    deadline=task.deadline,
                    fits=fits,
                )
            )
        last_step_mu = mu
        _log.debug(
            "MINPROCS %s: mu=%d makespan=%g deadline=%g -> %s",
            name, mu, makespan, task.deadline,
            "fits" if fits else "too long",
        )
        entry = (makespan, fits, payload)
        probes[mu] = entry
        return entry

    def _monotone() -> bool:
        """Makespan non-increasing over every *observed* probe pair."""
        mus = sorted(probes)
        for a, b in zip(mus, mus[1:]):
            if probes[a][0] < probes[b][0]:
                return False
        return True

    def _record_search() -> None:
        _metrics.incr("minprocs_ls_runs", ls_runs)
        if use_kernel:
            _metrics.incr("list_schedule_invocations", ls_runs)
            _metrics.incr("list_schedule_vertices", ls_runs * len(task.dag))
        _metrics.record_time(
            "minprocs.search_seconds", time.perf_counter() - search_started
        )

    def _finish(mu: int) -> MinProcsResult:
        if timing:
            _record_search()
        makespan, _fits, payload = _probe(mu)
        if ctx is not None and last_step_mu != mu:
            # The bracketed search's last probe may be a non-fitting lower
            # bound; re-emit the winning cluster so traces still end on a
            # fitting step (no extra LS run -- the probe is memoized).
            ctx.record(
                MinprocsStep(
                    task=name,
                    processors=mu,
                    makespan=makespan,
                    deadline=task.deadline,
                    fits=True,
                )
            )
        if use_kernel:
            schedule = _kernels.build_schedule(task.dag, compiled, mu, payload)
            schedule.validate()
        else:
            schedule = payload
        return MinProcsResult(
            processors=mu,
            schedule=schedule,
            attempts=mu - start + 1,
            ls_runs=ls_runs,
        )

    def _reject() -> None:
        if timing:
            _record_search()
        _log.debug(
            "MINPROCS %s: no cluster of <= %d processors meets deadline %g",
            name, available, task.deadline,
        )
        return None

    def _linear() -> MinProcsResult | None:
        for mu in range(start, available + 1):
            if _probe(mu)[1]:
                return _finish(mu)
        return _reject()

    if MU_SEARCH == "linear" or available - start + 1 < BISECT_MIN_RANGE:
        return _linear()

    # Gallop from `start` with doubling stride to bracket the first fit.
    if _probe(start)[1]:
        return _finish(start)
    lo = start  # largest mu known not to fit
    hi = -1  # smallest mu known to fit
    step = 1
    while hi < 0:
        nxt = min(lo + step, available)
        if _probe(nxt)[1]:
            hi = nxt
        elif nxt == available:
            break
        else:
            lo = nxt
            step *= 2
    if not _monotone():
        # Graham anomaly among the observed makespans: the bracket cannot be
        # trusted.  Replay Figure 3 verbatim (memoized probes are free).
        _metrics.incr("minprocs_anomaly_fallbacks")
        return _linear()
    if hi < 0:
        return _reject()
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _probe(mid)[1]:
            hi = mid
        else:
            lo = mid
    if not _monotone():
        _metrics.incr("minprocs_anomaly_fallbacks")
        return _linear()
    return _finish(hi)


def _minprocs_cached(
    task: SporadicDAGTask,
    available: int,
    order: str | Sequence[VertexId],
) -> MinProcsResult | None:
    """MINPROCS answered from the analysis cache where possible.

    The cache key is ``(DAG digest, deadline, order)`` -- deliberately *not*
    the processor budget.  The search scans ``mu = start, start+1, ...`` and
    stops at the first fitting cluster, so the minimal fitting ``mu*`` is a
    property of the task alone: any budget ``>= mu*`` yields the same result
    and any smaller budget yields ``None``.  A cached failure records the
    largest budget searched; larger budgets re-run the search and upgrade
    the entry.

    Cached answers skip the per-``mu`` :class:`MinprocsStep` trace events and
    ``minprocs_ls_runs`` counter updates (no List Scheduling actually runs);
    the returned result is identical to the uncached one, including the
    reconstructed ``attempts`` count.
    """
    key = (
        task.dag.digest(),
        task.deadline,
        order if isinstance(order, str) else tuple(order),
    )
    start = max(1, math.ceil(task.density - 1e-12))
    entry = _caches.minprocs.get(key)
    if entry is not MISSING:
        fitted, payload = entry
        if fitted:
            mu, schedule = payload
            if mu <= available:
                return MinProcsResult(
                    processors=mu,
                    schedule=schedule,
                    attempts=mu - start + 1,
                    ls_runs=0,
                )
            return None
        if available <= payload:  # searched this far before: nothing fits
            return None
    result = _minprocs_search(task, available, order)
    if result is not None:
        _caches.minprocs.put(key, (True, (result.processors, result.schedule)))
    else:
        _caches.minprocs.put(key, (False, available))
    return result


def minprocs_unbounded(
    task: SporadicDAGTask,
    order: str | Sequence[VertexId] = "longest_path",
) -> MinProcsResult | None:
    """MINPROCS with no cap on the cluster size.

    Useful for analysis experiments (Lemma 1 validation): the search always
    terminates by ``mu = |V_i|`` when the task is structurally feasible
    (``len_i <= D_i``) -- with one processor per job every available job
    starts the instant its predecessors finish, so the LS makespan equals the
    critical path length ``len_i``.
    """
    if task.span > task.deadline:
        return None
    return minprocs(task, len(task.dag), order=order)
