"""The paper's primary contribution: FEDCONS and its two phases
(MINPROCS over List-Scheduling templates; DBF*-based PARTITION)."""

from repro.core.dbf import (
    demand_breakpoints,
    edf_approx_test,
    edf_density_test,
    edf_exact_test,
    minimum_speed_exact,
    testing_interval_bound,
    total_dbf,
    total_dbf_approx,
)
from repro.core.fixed_priority import (
    deadline_monotonic,
    fp_exact_test,
    rbf_approx_test,
    response_time_analysis,
)
from repro.core.fedcons import (
    FailureReason,
    FedConsResult,
    HighDensityAllocation,
    fedcons,
)
from repro.core.kernels import (
    CompiledDAG,
    compile_dag,
    disable_kernels,
    enable_kernels,
    kernels_enabled,
    use_kernels,
)
from repro.core.list_scheduling import (
    PRIORITY_ORDERS,
    PreparedLS,
    graham_anomaly_instance,
    graham_makespan_bound,
    list_schedule,
    makespan_lower_bound,
    prepare_ls,
    priority_list,
)
from repro.core.minprocs import MinProcsResult, minprocs, minprocs_unbounded
from repro.core.partition import (
    AdmissionTest,
    FitStrategy,
    PartitionResult,
    TaskOrder,
    partition,
    partition_sporadic,
)
from repro.core.schedule import Schedule, Slot
from repro.core.shard import ShardState

__all__ = [
    "Schedule",
    "Slot",
    "list_schedule",
    "priority_list",
    "PRIORITY_ORDERS",
    "PreparedLS",
    "prepare_ls",
    "CompiledDAG",
    "compile_dag",
    "kernels_enabled",
    "enable_kernels",
    "disable_kernels",
    "use_kernels",
    "graham_makespan_bound",
    "makespan_lower_bound",
    "graham_anomaly_instance",
    "minprocs",
    "minprocs_unbounded",
    "MinProcsResult",
    "total_dbf",
    "total_dbf_approx",
    "edf_density_test",
    "edf_approx_test",
    "edf_exact_test",
    "minimum_speed_exact",
    "testing_interval_bound",
    "demand_breakpoints",
    "partition",
    "partition_sporadic",
    "PartitionResult",
    "FitStrategy",
    "TaskOrder",
    "AdmissionTest",
    "ShardState",
    "deadline_monotonic",
    "response_time_analysis",
    "fp_exact_test",
    "rbf_approx_test",
    "fedcons",
    "FedConsResult",
    "FailureReason",
    "HighDensityAllocation",
]
