"""Incremental per-processor ``DBF*`` demand state (:class:`ShardState`).

Both PARTITION (batch) and the online admission controller repeatedly ask the
same question of a shared EDF processor: *if this sporadic task joined the
bucket, would the processor still pass the ``DBF*`` demand test?*  The naive
answer re-evaluates ``sum_j DBF*(tau_j, t)`` over the whole bucket for every
probe -- ``O(bucket)`` per candidate processor, ``O(n^2)`` per partitioning
pass.

A :class:`ShardState` is one shared processor's demand ledger.  It keeps the
bucket's tasks sorted by ``(deadline, rank)`` together with prefix sums of
``C_j``, ``u_j`` and ``u_j * D_j``.  Because every ``DBF*`` term is
``C_j + u_j * (t - D_j)`` once ``t >= D_j`` and zero before, the aggregate
demand at any instant ``t`` is::

    DBF*(shard, t) = S_C(t) + t * S_u(t) - S_uD(t)

where the three sums range over tasks with ``D_j <= t`` -- a single bisect
plus three array reads, ``O(log bucket)`` per probe.

Two admission probes are offered:

``fits_at_deadline``
    the paper's Figure 4 condition checked at the single point ``t = D_i``
    plus the Baruah-Fisher rate condition.  Sound **only** when tasks are
    placed in non-decreasing deadline order (the batch PARTITION default).
``fits_all_points``
    the same two conditions *plus* a re-check of every existing test point at
    or after the newcomer's deadline.  A task with an early deadline adds
    demand at every later test point, so this is the order-independently
    sound variant the online controller (and the ``GIVEN``-order batch
    oracle) uses.  Cost: ``O(affected test points)``.

The prefix arrays are rebuilt left-to-right from the sorted entry list on
every mutation, so every derived float is a pure function of the shard's
*contents* -- independent of the add/remove history.  That is what lets the
online controller's incrementally-maintained shards compare bit-for-bit
against shards freshly built by a from-scratch batch re-analysis.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right, insort
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.core.kernels import flags as _kernel_flags
from repro.model.sporadic import SporadicTask

__all__ = ["ShardState", "ShardProbeMatrix"]

_TOL = 1e-9


def _vector_min_points_default() -> int:
    """``REPRO_VECTOR_MIN_POINTS`` override of the scalar/vector crossover."""
    raw = os.environ.get("REPRO_VECTOR_MIN_POINTS", "")
    try:
        value = int(raw)
    except ValueError:
        return 16
    return value if value >= 0 else 16


#: Below this many affected test points the scalar probe loop wins; above it
#: :meth:`ShardState.fits_all_points` switches to one vectorized numpy pass.
#: Overridable via ``REPRO_VECTOR_MIN_POINTS`` (see docs/PERFORMANCE.md for
#: the micro-benchmark behind the default of 16); monkeypatchable in tests.
VECTOR_MIN_POINTS = _vector_min_points_default()


class ShardState:
    """The incremental ``DBF*`` demand ledger of one shared EDF processor.

    Entries are ``(deadline, rank, task)`` triples kept sorted by
    ``(deadline, rank)``; *rank* is any caller-supplied integer whose relative
    order among equal deadlines is canonical (batch PARTITION uses the
    placement index, the online controller its admission sequence number), so
    two shards with the same task contents always hold them -- and sum their
    demand -- in the same order.
    """

    __slots__ = (
        "_entries",
        "_deadlines",
        "_cum_wcet",
        "_cum_util",
        "_cum_util_deadline",
        "_arrays",
    )

    def __init__(
        self, entries: Iterable[tuple[SporadicTask, int]] = ()
    ) -> None:
        self._entries: list[tuple[float, int, SporadicTask]] = sorted(
            (task.deadline, rank, task) for task, rank in entries
        )
        self._rebuild()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute the prefix-sum arrays from the sorted entry list."""
        self._deadlines = [d for d, _, _ in self._entries]
        cum_wcet: list[float] = []
        cum_util: list[float] = []
        cum_util_deadline: list[float] = []
        wcet_sum = util_sum = util_deadline_sum = 0.0
        for deadline, _, task in self._entries:
            wcet_sum += task.wcet
            util_sum += task.utilization
            util_deadline_sum += task.utilization * deadline
            cum_wcet.append(wcet_sum)
            cum_util.append(util_sum)
            cum_util_deadline.append(util_deadline_sum)
        self._cum_wcet = cum_wcet
        self._cum_util = cum_util
        self._cum_util_deadline = cum_util_deadline
        # Lazily-built numpy mirrors of the prefix arrays (vectorized probe).
        self._arrays: tuple[np.ndarray, ...] | None = None

    def _numpy_arrays(self) -> tuple[np.ndarray, ...]:
        """Numpy mirrors of ``(deadlines, cum_wcet, cum_util, cum_util_deadline)``.

        Built on first vectorized probe after a mutation; the floats are the
        same Python floats the scalar path reads, so both paths compute
        bit-identical demands.
        """
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self._deadlines),
                np.asarray(self._cum_wcet),
                np.asarray(self._cum_util),
                np.asarray(self._cum_util_deadline),
            )
            self._arrays = arrays
        return arrays

    def add(self, task: SporadicTask, rank: int) -> None:
        """Insert *task* with the canonical tie-break *rank*."""
        insort(self._entries, (task.deadline, rank, task))
        self._rebuild()

    def remove(self, name: str) -> SporadicTask:
        """Remove (and return) the task called *name*.

        Raises
        ------
        AnalysisError
            If no task with that name is on this shard.
        """
        for i, (_, _, task) in enumerate(self._entries):
            if task.name == name:
                del self._entries[i]
                self._rebuild()
                return task
        raise AnalysisError(f"no task named {name!r} on this shard")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tasks(self) -> tuple[SporadicTask, ...]:
        """The shard's tasks in canonical ``(deadline, rank)`` order."""
        return tuple(task for _, _, task in self._entries)

    @property
    def entries(self) -> tuple[tuple[SporadicTask, int], ...]:
        """``(task, rank)`` pairs in canonical order -- enough to rebuild an
        identical shard with ``ShardState(shard.entries)`` (used by the
        controller's lossless snapshot/restore path)."""
        return tuple((task, rank) for _, rank, task in self._entries)

    def state_vector(self) -> tuple[tuple[float, ...], ...]:
        """The derived float arrays, for bit-exactness assertions.

        Two shards holding the same ``(deadline, rank, C, u)`` contents have
        identical state vectors *regardless of mutation history* -- the
        invariant that makes checkpoint restore (a fresh left-to-right
        rebuild) float-equal to the incrementally maintained original.
        """
        return (
            tuple(self._deadlines),
            tuple(self._cum_wcet),
            tuple(self._cum_util),
            tuple(self._cum_util_deadline),
        )

    @property
    def utilization(self) -> float:
        """Total long-run rate ``sum_j u_j`` of the shard."""
        return self._cum_util[-1] if self._cum_util else 0.0

    def demand(self, t: float) -> float:
        """Aggregate ``sum_j DBF*(tau_j, t)`` of the shard's tasks."""
        p = bisect_right(self._deadlines, t)
        if p == 0:
            return 0.0
        return (
            self._cum_wcet[p - 1]
            + self._cum_util[p - 1] * t
            - self._cum_util_deadline[p - 1]
        )

    def demand_with(self, task: SporadicTask, t: float) -> float:
        """Aggregate ``DBF*`` demand at *t* if *task* joined the shard."""
        return self.demand(t) + task.dbf_approx(t)

    def test_points_at_or_after(self, t: float) -> list[float]:
        """Existing test points (task deadlines) ``>= t``, deduplicated."""
        points: list[float] = []
        for i in range(bisect_left(self._deadlines, t), len(self._deadlines)):
            point = self._deadlines[i]
            if not points or point != points[-1]:
                points.append(point)
        return points

    # ------------------------------------------------------------------
    # admission probes
    # ------------------------------------------------------------------
    def fits_at_deadline(self, task: SporadicTask) -> bool:
        """Figure 4's demand condition at ``t = D_i`` plus the rate condition.

        Decision-equivalent to the historical ``_fits_demand`` bucket scan;
        sound only under non-decreasing-deadline placement order.
        """
        demand = self.demand(task.deadline)
        if task.deadline - demand < task.wcet - _TOL:
            return False
        return 1.0 - self.utilization >= task.utilization - _TOL

    def fits_all_points(self, task: SporadicTask) -> bool:
        """Order-independently sound ``DBF*`` admission probe.

        Beyond :meth:`fits_at_deadline`, re-checks every existing test point
        at or after the newcomer's deadline -- the only points where the
        newcomer adds demand (``DBF*(tau_new, t) = 0`` for ``t < D_new``, and
        points strictly before ``D_new`` were verified when their tasks were
        placed).

        Large shards answer the re-check in one vectorized numpy pass over
        the prefix arrays (same float expressions as :meth:`demand` /
        ``dbf_approx``, hence the same verdict); small shards keep the
        scalar loop, which beats the numpy call overhead below
        :data:`VECTOR_MIN_POINTS` points.
        """
        if not self.fits_at_deadline(task):
            return False
        lo = bisect_left(self._deadlines, task.deadline)
        if _kernel_flags.enabled and len(self._deadlines) - lo >= VECTOR_MIN_POINTS:
            deadlines, cum_wcet, cum_util, cum_util_deadline = self._numpy_arrays()
            points = deadlines[lo:]
            # bisect_right of each point within the full deadline list; every
            # point is itself a stored deadline, so the index is >= 1.
            idx = np.searchsorted(deadlines, points, side="right") - 1
            demand = cum_wcet[idx] + cum_util[idx] * points - cum_util_deadline[idx]
            with_task = demand + (
                task.wcet + task.utilization * (points - task.deadline)
            )
            return not bool(np.any(with_task > points + _TOL))
        for point in self.test_points_at_or_after(task.deadline):
            if self.demand_with(task, point) > point + _TOL:
                return False
        return True


class ShardProbeMatrix:
    """Batched ``fits_all_points`` probes over *many* shards at once.

    The scalar path answers "does this task fit shard ``k``?" one shard at a
    time -- a bisect plus an O(affected points) scan per shard.  This class
    packs every shard's ledger into one padded ``(shards, points)`` matrix so
    a candidate (or a whole batch of candidates) is probed against *all*
    shards in a single NumPy broadcast.

    Bit-identity: each cell evaluates exactly the float expressions of
    :meth:`ShardState.fits_at_deadline` and the vectorized branch of
    :meth:`ShardState.fits_all_points` -- same operand order, same
    ``_TOL`` comparisons -- so ``probe(task)[k] ==
    shards[k].fits_all_points(task)`` for every shard, and first-fit
    placement (take the lowest ``True`` index) is unchanged.

    The per-point *base* demand (the shard's own aggregate ``DBF*`` at each
    of its test points) is candidate-independent, so it is precomputed once
    per build/refresh; a probe only adds the candidate term
    ``C + u * (t - D)`` and compares.  Rows carry headroom so the admission
    hot path can :meth:`refresh_column` in place after an accept instead of
    rebuilding the whole matrix; the owner rebuilds when a refresh reports
    the row outgrew its padding or the shard list itself changed shape.
    """

    __slots__ = (
        "_capacity",
        "_points",
        "_valid",
        "_base",
        "_cum_wcet",
        "_cum_util",
        "_cum_util_deadline",
        "_util_total",
        "_cols",
    )

    def __init__(self, shards: Sequence[ShardState]) -> None:
        longest = max((len(s) for s in shards), default=0)
        # Headroom: admissions grow one row at a time, so a few spare slots
        # per row amortize full rebuilds across a batch of accepts.
        self._capacity = longest + max(8, longest // 4)
        rows, cols = len(shards), self._capacity
        self._points = np.zeros((rows, cols))
        self._valid = np.zeros((rows, cols), dtype=bool)
        self._base = np.zeros((rows, cols))
        self._cum_wcet = np.zeros((rows, cols))
        self._cum_util = np.zeros((rows, cols))
        self._cum_util_deadline = np.zeros((rows, cols))
        self._util_total = np.zeros(rows)
        self._cols = np.arange(rows)
        for r, shard in enumerate(shards):
            self._fill_row(r, shard)

    @property
    def shard_count(self) -> int:
        return self._points.shape[0]

    def _fill_row(self, r: int, shard: ShardState) -> None:
        n = len(shard._deadlines)
        self._valid[r, :] = False
        self._points[r, :] = 0.0
        self._base[r, :] = 0.0
        self._cum_wcet[r, :] = 0.0
        self._cum_util[r, :] = 0.0
        self._cum_util_deadline[r, :] = 0.0
        self._util_total[r] = shard.utilization
        if n == 0:
            return
        deadlines, cum_wcet, cum_util, cum_util_deadline = shard._numpy_arrays()
        self._valid[r, :n] = True
        self._points[r, :n] = deadlines
        self._cum_wcet[r, :n] = cum_wcet
        self._cum_util[r, :n] = cum_util
        self._cum_util_deadline[r, :n] = cum_util_deadline
        # Demand at a point reads the prefix sums at the *last* entry of the
        # point's duplicate group (bisect_right semantics).
        last = np.searchsorted(deadlines, deadlines, side="right") - 1
        self._base[r, :n] = (
            cum_wcet[last] + cum_util[last] * deadlines - cum_util_deadline[last]
        )

    def refresh_column(self, k: int, shard: ShardState) -> bool:
        """Re-mirror shard *k* after a mutation; ``False`` if it outgrew the
        row padding (the caller must rebuild the matrix)."""
        if len(shard) > self._capacity:
            return False
        self._fill_row(k, shard)
        return True

    def probe(self, task: SporadicTask) -> np.ndarray:
        """Per-shard ``fits_all_points`` verdicts for one candidate."""
        return self._probe_block((task,), slice(None))[0]

    def probe_many(self, tasks: Sequence[SporadicTask]) -> np.ndarray:
        """``(candidates, shards)`` verdict matrix in one broadcast."""
        return self._probe_block(tasks, slice(None))

    def probe_column(self, tasks: Sequence[SporadicTask], k: int) -> np.ndarray:
        """Per-candidate verdicts against the single shard *k*."""
        return self._probe_block(tasks, slice(k, k + 1))[:, 0]

    def _probe_block(
        self, tasks: Sequence[SporadicTask], sl: slice
    ) -> np.ndarray:
        points = self._points[sl]
        valid = self._valid[sl]
        deadline = np.array([t.deadline for t in tasks])[:, None]
        wcet = np.array([t.wcet for t in tasks])[:, None]
        util = np.array([t.utilization for t in tasks])[:, None]
        deadline3 = deadline[:, :, None]
        # fits_at_deadline, batched: per-shard demand at t = D via the
        # bisect_right prefix index (count of entries with deadline <= D).
        at_or_before = valid & (points <= deadline3)
        count = at_or_before.sum(axis=2)
        gather = np.maximum(count - 1, 0)
        rows = self._cols[sl][None, :]
        demand_at = (
            self._cum_wcet[rows, gather]
            + self._cum_util[rows, gather] * deadline
            - self._cum_util_deadline[rows, gather]
        )
        demand_at = np.where(count > 0, demand_at, 0.0)
        fits = deadline - demand_at >= wcet - _TOL
        fits &= 1.0 - self._util_total[sl][None, :] >= util - _TOL
        # fits_all_points, batched: candidate demand added at every existing
        # test point at or after its deadline (same grouping as the scalar
        # vector branch: base + (C + u * (t - D))).
        with_task = self._base[sl] + (
            wcet[:, :, None] + util[:, :, None] * (points - deadline3)
        )
        violation = (with_task > points + _TOL) & valid & (points >= deadline3)
        fits &= ~violation.any(axis=2)
        return fits
