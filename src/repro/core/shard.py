"""Incremental per-processor ``DBF*`` demand state (:class:`ShardState`).

Both PARTITION (batch) and the online admission controller repeatedly ask the
same question of a shared EDF processor: *if this sporadic task joined the
bucket, would the processor still pass the ``DBF*`` demand test?*  The naive
answer re-evaluates ``sum_j DBF*(tau_j, t)`` over the whole bucket for every
probe -- ``O(bucket)`` per candidate processor, ``O(n^2)`` per partitioning
pass.

A :class:`ShardState` is one shared processor's demand ledger.  It keeps the
bucket's tasks sorted by ``(deadline, rank)`` together with prefix sums of
``C_j``, ``u_j`` and ``u_j * D_j``.  Because every ``DBF*`` term is
``C_j + u_j * (t - D_j)`` once ``t >= D_j`` and zero before, the aggregate
demand at any instant ``t`` is::

    DBF*(shard, t) = S_C(t) + t * S_u(t) - S_uD(t)

where the three sums range over tasks with ``D_j <= t`` -- a single bisect
plus three array reads, ``O(log bucket)`` per probe.

Two admission probes are offered:

``fits_at_deadline``
    the paper's Figure 4 condition checked at the single point ``t = D_i``
    plus the Baruah-Fisher rate condition.  Sound **only** when tasks are
    placed in non-decreasing deadline order (the batch PARTITION default).
``fits_all_points``
    the same two conditions *plus* a re-check of every existing test point at
    or after the newcomer's deadline.  A task with an early deadline adds
    demand at every later test point, so this is the order-independently
    sound variant the online controller (and the ``GIVEN``-order batch
    oracle) uses.  Cost: ``O(affected test points)``.

The prefix arrays are rebuilt left-to-right from the sorted entry list on
every mutation, so every derived float is a pure function of the shard's
*contents* -- independent of the add/remove history.  That is what lets the
online controller's incrementally-maintained shards compare bit-for-bit
against shards freshly built by a from-scratch batch re-analysis.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Iterable

import numpy as np

from repro.errors import AnalysisError
from repro.core.kernels import flags as _kernel_flags
from repro.model.sporadic import SporadicTask

__all__ = ["ShardState"]

_TOL = 1e-9

#: Below this many affected test points the scalar probe loop wins; above it
#: :meth:`ShardState.fits_all_points` switches to one vectorized numpy pass.
VECTOR_MIN_POINTS = 16


class ShardState:
    """The incremental ``DBF*`` demand ledger of one shared EDF processor.

    Entries are ``(deadline, rank, task)`` triples kept sorted by
    ``(deadline, rank)``; *rank* is any caller-supplied integer whose relative
    order among equal deadlines is canonical (batch PARTITION uses the
    placement index, the online controller its admission sequence number), so
    two shards with the same task contents always hold them -- and sum their
    demand -- in the same order.
    """

    __slots__ = (
        "_entries",
        "_deadlines",
        "_cum_wcet",
        "_cum_util",
        "_cum_util_deadline",
        "_arrays",
    )

    def __init__(
        self, entries: Iterable[tuple[SporadicTask, int]] = ()
    ) -> None:
        self._entries: list[tuple[float, int, SporadicTask]] = sorted(
            (task.deadline, rank, task) for task, rank in entries
        )
        self._rebuild()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute the prefix-sum arrays from the sorted entry list."""
        self._deadlines = [d for d, _, _ in self._entries]
        cum_wcet: list[float] = []
        cum_util: list[float] = []
        cum_util_deadline: list[float] = []
        wcet_sum = util_sum = util_deadline_sum = 0.0
        for deadline, _, task in self._entries:
            wcet_sum += task.wcet
            util_sum += task.utilization
            util_deadline_sum += task.utilization * deadline
            cum_wcet.append(wcet_sum)
            cum_util.append(util_sum)
            cum_util_deadline.append(util_deadline_sum)
        self._cum_wcet = cum_wcet
        self._cum_util = cum_util
        self._cum_util_deadline = cum_util_deadline
        # Lazily-built numpy mirrors of the prefix arrays (vectorized probe).
        self._arrays: tuple[np.ndarray, ...] | None = None

    def _numpy_arrays(self) -> tuple[np.ndarray, ...]:
        """Numpy mirrors of ``(deadlines, cum_wcet, cum_util, cum_util_deadline)``.

        Built on first vectorized probe after a mutation; the floats are the
        same Python floats the scalar path reads, so both paths compute
        bit-identical demands.
        """
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self._deadlines),
                np.asarray(self._cum_wcet),
                np.asarray(self._cum_util),
                np.asarray(self._cum_util_deadline),
            )
            self._arrays = arrays
        return arrays

    def add(self, task: SporadicTask, rank: int) -> None:
        """Insert *task* with the canonical tie-break *rank*."""
        insort(self._entries, (task.deadline, rank, task))
        self._rebuild()

    def remove(self, name: str) -> SporadicTask:
        """Remove (and return) the task called *name*.

        Raises
        ------
        AnalysisError
            If no task with that name is on this shard.
        """
        for i, (_, _, task) in enumerate(self._entries):
            if task.name == name:
                del self._entries[i]
                self._rebuild()
                return task
        raise AnalysisError(f"no task named {name!r} on this shard")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tasks(self) -> tuple[SporadicTask, ...]:
        """The shard's tasks in canonical ``(deadline, rank)`` order."""
        return tuple(task for _, _, task in self._entries)

    @property
    def entries(self) -> tuple[tuple[SporadicTask, int], ...]:
        """``(task, rank)`` pairs in canonical order -- enough to rebuild an
        identical shard with ``ShardState(shard.entries)`` (used by the
        controller's lossless snapshot/restore path)."""
        return tuple((task, rank) for _, rank, task in self._entries)

    def state_vector(self) -> tuple[tuple[float, ...], ...]:
        """The derived float arrays, for bit-exactness assertions.

        Two shards holding the same ``(deadline, rank, C, u)`` contents have
        identical state vectors *regardless of mutation history* -- the
        invariant that makes checkpoint restore (a fresh left-to-right
        rebuild) float-equal to the incrementally maintained original.
        """
        return (
            tuple(self._deadlines),
            tuple(self._cum_wcet),
            tuple(self._cum_util),
            tuple(self._cum_util_deadline),
        )

    @property
    def utilization(self) -> float:
        """Total long-run rate ``sum_j u_j`` of the shard."""
        return self._cum_util[-1] if self._cum_util else 0.0

    def demand(self, t: float) -> float:
        """Aggregate ``sum_j DBF*(tau_j, t)`` of the shard's tasks."""
        p = bisect_right(self._deadlines, t)
        if p == 0:
            return 0.0
        return (
            self._cum_wcet[p - 1]
            + self._cum_util[p - 1] * t
            - self._cum_util_deadline[p - 1]
        )

    def demand_with(self, task: SporadicTask, t: float) -> float:
        """Aggregate ``DBF*`` demand at *t* if *task* joined the shard."""
        return self.demand(t) + task.dbf_approx(t)

    def test_points_at_or_after(self, t: float) -> list[float]:
        """Existing test points (task deadlines) ``>= t``, deduplicated."""
        points: list[float] = []
        for i in range(bisect_left(self._deadlines, t), len(self._deadlines)):
            point = self._deadlines[i]
            if not points or point != points[-1]:
                points.append(point)
        return points

    # ------------------------------------------------------------------
    # admission probes
    # ------------------------------------------------------------------
    def fits_at_deadline(self, task: SporadicTask) -> bool:
        """Figure 4's demand condition at ``t = D_i`` plus the rate condition.

        Decision-equivalent to the historical ``_fits_demand`` bucket scan;
        sound only under non-decreasing-deadline placement order.
        """
        demand = self.demand(task.deadline)
        if task.deadline - demand < task.wcet - _TOL:
            return False
        return 1.0 - self.utilization >= task.utilization - _TOL

    def fits_all_points(self, task: SporadicTask) -> bool:
        """Order-independently sound ``DBF*`` admission probe.

        Beyond :meth:`fits_at_deadline`, re-checks every existing test point
        at or after the newcomer's deadline -- the only points where the
        newcomer adds demand (``DBF*(tau_new, t) = 0`` for ``t < D_new``, and
        points strictly before ``D_new`` were verified when their tasks were
        placed).

        Large shards answer the re-check in one vectorized numpy pass over
        the prefix arrays (same float expressions as :meth:`demand` /
        ``dbf_approx``, hence the same verdict); small shards keep the
        scalar loop, which beats the numpy call overhead below
        :data:`VECTOR_MIN_POINTS` points.
        """
        if not self.fits_at_deadline(task):
            return False
        lo = bisect_left(self._deadlines, task.deadline)
        if _kernel_flags.enabled and len(self._deadlines) - lo >= VECTOR_MIN_POINTS:
            deadlines, cum_wcet, cum_util, cum_util_deadline = self._numpy_arrays()
            points = deadlines[lo:]
            # bisect_right of each point within the full deadline list; every
            # point is itself a stored deadline, so the index is >= 1.
            idx = np.searchsorted(deadlines, points, side="right") - 1
            demand = cum_wcet[idx] + cum_util[idx] * points - cum_util_deadline[idx]
            with_task = demand + (
                task.wcet + task.utilization * (points - task.deadline)
            )
            return not bool(np.any(with_task > points + _TOL))
        for point in self.test_points_at_or_after(task.deadline):
            if self.demand_with(task, point) > point + _TOL:
                return False
        return True
