"""Algorithm FEDCONS (Figure 2 of the paper).

FEDCONS performs federated scheduling of a constrained-deadline sporadic DAG
task system ``tau`` on ``m`` identical unit-speed preemptive processors:

1. For each **high-density** task (``delta_i >= 1``, in system order),
   MINPROCS computes the smallest dedicated cluster ``m_i`` on which Graham's
   List Scheduling meets ``D_i``, and stores the resulting template schedule
   ``sigma_i``; the cluster is removed from the remaining pool ``m_r``.
   FAILURE if ``m_i > m_r`` for some task.
2. The **low-density** tasks are collapsed to three-parameter sporadic tasks
   and PARTITIONed onto the remaining ``m_r`` processors (deadline-ordered
   first-fit with the ``DBF*`` admission test); each shared processor runs
   preemptive uniprocessor EDF at run time.  FAILURE if any task does not fit.

Theorem 1: if ``tau`` is schedulable by an *optimal* federated scheduler on
``m`` processors of some speed, FEDCONS succeeds on ``m`` processors that are
``3 - 1/m`` times as fast.

The returned :class:`FedConsResult` is a complete deployment description --
which physical processor indices each high-density task owns, its run-time
template, and the shared-pool partition -- and is directly executable by
:mod:`repro.sim`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from repro.errors import AnalysisError
from repro.core.minprocs import MinProcsResult, minprocs
from repro.core.partition import (
    AdmissionTest,
    FitStrategy,
    PartitionResult,
    TaskOrder,
    partition,
)
from repro.core.schedule import Schedule
from repro.model.dag import VertexId
from repro.model.task import SporadicDAGTask
from repro.model.taskset import TaskSystem
from repro.obs.events import PhaseComplete, Rejection, current_context
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _metrics
from repro.obs.spans import span as _span

__all__ = [
    "FailureReason",
    "HighDensityAllocation",
    "FedConsResult",
    "fedcons",
]

_log = get_logger(__name__)


class FailureReason(Enum):
    """Why FEDCONS declared a system unschedulable."""

    STRUCTURALLY_INFEASIBLE = "structurally_infeasible"  # some len_i > D_i
    HIGH_DENSITY_PHASE = "high_density_phase"  # MINPROCS ran out of processors
    PARTITION_PHASE = "partition_phase"  # PARTITION returned FAILURE


@dataclass(frozen=True)
class HighDensityAllocation:
    """A high-density task's exclusive cluster and run-time template."""

    task: SporadicDAGTask
    processors: tuple[int, ...]  # physical processor indices, exclusive
    schedule: Schedule  # template sigma_i (relative to release)
    minprocs_attempts: int

    @property
    def cluster_size(self) -> int:
        """``m_i``: number of processors in the exclusive cluster."""
        return len(self.processors)


@dataclass(frozen=True)
class FedConsResult:
    """Outcome of FEDCONS: a full deployment or a diagnosed failure.

    Attributes
    ----------
    success:
        Whether the whole system was admitted.
    reason:
        On failure, which phase failed (``None`` on success).
    total_processors:
        The platform size ``m`` handed to FEDCONS.
    allocations:
        Per high-density task: its exclusive cluster and template, in the
        order the tasks were processed.  Populated as far as the algorithm
        got even on failure.
    shared_processors:
        Physical indices of the processors left to the shared EDF pool.
    partition:
        The PARTITION outcome over the shared pool (``None`` if the high-
        density phase already failed).
    failed_task:
        The first task that could not be accommodated (``None`` on success).
    """

    success: bool
    total_processors: int
    allocations: tuple[HighDensityAllocation, ...]
    shared_processors: tuple[int, ...]
    partition: PartitionResult | None
    reason: FailureReason | None = None
    failed_task: SporadicDAGTask | None = None

    @property
    def dedicated_processor_count(self) -> int:
        """Processors granted exclusively to high-density tasks."""
        return sum(a.cluster_size for a in self.allocations)

    @property
    def shared_processor_count(self) -> int:
        """Processors left to the shared EDF pool."""
        return len(self.shared_processors)

    def allocation_for(self, task: SporadicDAGTask) -> HighDensityAllocation:
        """The exclusive allocation of a high-density *task*."""
        for alloc in self.allocations:
            if alloc.task == task:
                return alloc
        raise AnalysisError(
            f"task {task.name or task!r} has no dedicated allocation"
        )

    def describe(self) -> str:
        """Human-readable deployment summary."""
        lines = [
            f"FEDCONS on m={self.total_processors}: "
            f"{'ACCEPTED' if self.success else 'REJECTED (' + self.reason.value + ')'}"
        ]
        for alloc in self.allocations:
            name = alloc.task.name or repr(alloc.task)
            lines.append(
                f"  high-density {name}: processors {list(alloc.processors)} "
                f"(makespan {alloc.schedule.makespan:g} <= D "
                f"{alloc.task.deadline:g})"
            )
        if self.partition is not None:
            for k, bucket in enumerate(self.partition.assignment):
                if not bucket:
                    continue
                phys = self.shared_processors[k]
                names = ", ".join(t.name or "?" for t in bucket)
                util = sum(t.utilization for t in bucket)
                lines.append(
                    f"  shared P{phys} (EDF): [{names}] utilization {util:.3f}"
                )
        if self.failed_task is not None:
            lines.append(
                f"  failed on task {self.failed_task.name or self.failed_task!r}"
            )
        return "\n".join(lines)


def fedcons(
    system: TaskSystem | Sequence[SporadicDAGTask],
    processors: int,
    ls_order: str | Sequence[VertexId] = "longest_path",
    partition_order: TaskOrder = TaskOrder.DEADLINE,
    partition_fit: FitStrategy = FitStrategy.FIRST_FIT,
    partition_admission: AdmissionTest = AdmissionTest.DBF_APPROX,
) -> FedConsResult:
    """Run FEDCONS(tau, m).

    Parameters
    ----------
    system:
        A constrained-deadline sporadic DAG task system.
    processors:
        Platform size ``m`` (``>= 1``).
    ls_order:
        Priority order for the List Scheduling templates (Lemma 1 holds for
        any order; the default is the critical-path heuristic).
    partition_order / partition_fit / partition_admission:
        PARTITION-phase knobs; defaults reproduce the paper's Figure 4, the
        alternatives drive the EXP-F ablation.

    Returns
    -------
    FedConsResult
        Accepted deployments carry the per-task templates and the shared-pool
        partition; rejections carry the failing phase and task.

    Raises
    ------
    AnalysisError
        If *processors* < 1.
    repro.errors.ModelError
        If the system is not constrained-deadline (``D_i > T_i`` somewhere);
        FEDCONS's per-dag-job template argument is invalid in that case.
    """
    if processors < 1:
        raise AnalysisError(f"platform must have >= 1 processor, got {processors}")
    if not isinstance(system, TaskSystem):
        system = TaskSystem(system)
    system.validate_constrained()
    with _span("fedcons", tasks=len(system), processors=processors) as sp:
        result = _fedcons(
            system, processors, ls_order, partition_order, partition_fit,
            partition_admission,
        )
        sp.set(
            success=result.success,
            reason=None if result.reason is None else result.reason.value,
        )
        return result


def _fedcons(
    system: TaskSystem,
    processors: int,
    ls_order: str | Sequence[VertexId],
    partition_order: TaskOrder,
    partition_fit: FitStrategy,
    partition_admission: AdmissionTest,
) -> FedConsResult:

    ctx = current_context()
    started = time.perf_counter()
    if _metrics.enabled:
        _metrics.incr("fedcons_invocations")
    _log.debug(
        "FEDCONS start: %d tasks (%d high-density) on m=%d",
        len(system), len(system.high_density_tasks), processors,
    )

    def _finish(result: FedConsResult) -> FedConsResult:
        _metrics.record_time("fedcons.total_seconds", time.perf_counter() - started)
        if result.success:
            _log.info(
                "FEDCONS ACCEPTED on m=%d: %d dedicated + %d shared processors",
                processors,
                result.dedicated_processor_count,
                result.shared_processor_count,
            )
        else:
            name = (
                result.failed_task.name or repr(result.failed_task)
                if result.failed_task is not None
                else "?"
            )
            _log.info(
                "FEDCONS REJECTED on m=%d: %s at task %s",
                processors, result.reason.value, name,
            )
        return result

    # A task whose critical path exceeds its deadline is infeasible on any
    # platform of any speed; report that distinctly from resource exhaustion.
    phase_start = time.perf_counter()
    for task in system:
        if task.span > task.deadline:
            if ctx is not None:
                name = task.name or repr(task)
                ctx.record(
                    Rejection(
                        phase="validate",
                        reason=FailureReason.STRUCTURALLY_INFEASIBLE.value,
                        task=name,
                        detail={
                            "span": task.span,
                            "deadline": task.deadline,
                            "margin": task.deadline - task.span,
                        },
                    )
                )
            return _finish(
                FedConsResult(
                    success=False,
                    total_processors=processors,
                    allocations=(),
                    shared_processors=tuple(range(processors)),
                    partition=None,
                    reason=FailureReason.STRUCTURALLY_INFEASIBLE,
                    failed_task=task,
                )
            )
    if ctx is not None:
        ctx.record(
            PhaseComplete(
                phase="validate",
                ok=True,
                duration=time.perf_counter() - phase_start,
                detail={"tasks": len(system)},
            )
        )

    phase_start = time.perf_counter()
    remaining = processors  # m_r of the pseudo-code
    next_free = 0  # physical processors are granted left-to-right
    allocations: list[HighDensityAllocation] = []
    for task in system.high_density_tasks:
        result: MinProcsResult | None = minprocs(task, remaining, order=ls_order)
        if result is None:
            name = task.name or repr(task)
            if ctx is not None:
                ctx.record(
                    Rejection(
                        phase="minprocs",
                        reason=FailureReason.HIGH_DENSITY_PHASE.value,
                        task=name,
                        detail={
                            "available": remaining,
                            "density": task.density,
                            "minimum_cluster": max(
                                1, math.ceil(task.density - 1e-12)
                            ),
                            "span": task.span,
                            "deadline": task.deadline,
                        },
                    )
                )
            _log.info(
                "MINPROCS reject: %s needs more than the %d remaining "
                "processors (density %.3f)",
                name, remaining, task.density,
            )
            _metrics.record_time(
                "fedcons.minprocs_seconds", time.perf_counter() - phase_start
            )
            return _finish(
                FedConsResult(
                    success=False,
                    total_processors=processors,
                    allocations=tuple(allocations),
                    shared_processors=tuple(range(next_free, processors)),
                    partition=None,
                    reason=FailureReason.HIGH_DENSITY_PHASE,
                    failed_task=task,
                )
            )
        cluster = tuple(range(next_free, next_free + result.processors))
        allocations.append(
            HighDensityAllocation(
                task=task,
                processors=cluster,
                schedule=result.schedule,
                minprocs_attempts=result.attempts,
            )
        )
        _log.debug(
            "MINPROCS grant: %s gets processors %s (makespan %g <= D %g)",
            task.name or repr(task), list(cluster),
            result.schedule.makespan, task.deadline,
        )
        next_free += result.processors
        remaining -= result.processors
    minprocs_elapsed = time.perf_counter() - phase_start
    _metrics.record_time("fedcons.minprocs_seconds", minprocs_elapsed)
    if ctx is not None:
        ctx.record(
            PhaseComplete(
                phase="minprocs",
                ok=True,
                duration=minprocs_elapsed,
                detail={
                    "clusters": {
                        a.task.name or repr(a.task): a.cluster_size
                        for a in allocations
                    },
                    "dedicated": next_free,
                    "remaining": remaining,
                },
            )
        )
    _log.info(
        "FEDCONS minprocs phase done: %d high-density tasks on %d "
        "dedicated processors, %d remaining",
        len(allocations), next_free, remaining,
    )

    phase_start = time.perf_counter()
    shared = tuple(range(next_free, processors))
    low = system.low_density_tasks
    with _span(
        "fedcons.partition", tasks=len(low), processors=remaining
    ) as part_span:
        part = partition(
            low,
            remaining,
            order=partition_order,
            fit=partition_fit,
            admission=partition_admission,
        )
        part_span.set(success=part.success)
    partition_elapsed = time.perf_counter() - phase_start
    _metrics.record_time("fedcons.partition_seconds", partition_elapsed)
    if ctx is not None:
        ctx.record(
            PhaseComplete(
                phase="partition",
                ok=part.success,
                duration=partition_elapsed,
                detail={
                    "tasks": len(low),
                    "processors": remaining,
                    "used_processors": part.used_processors,
                },
            )
        )
    _log.info(
        "FEDCONS partition phase done: %d low-density tasks on %d shared "
        "processors -> %s",
        len(low), remaining, "placed" if part.success else "FAILURE",
    )
    if not part.success:
        failed_dag = None
        if part.failed_task is not None:
            failed_dag = part.dag_tasks.get(part.failed_task.name)
        return _finish(
            FedConsResult(
                success=False,
                total_processors=processors,
                allocations=tuple(allocations),
                shared_processors=shared,
                partition=part,
                reason=FailureReason.PARTITION_PHASE,
                failed_task=failed_dag,
            )
        )
    return _finish(
        FedConsResult(
            success=True,
            total_processors=processors,
            allocations=tuple(allocations),
            shared_processors=shared,
            partition=part,
        )
    )
