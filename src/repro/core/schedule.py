"""Template schedules for one dag-job on a dedicated processor cluster.

MINPROCS stores the schedule produced by Graham's List Scheduling as a
*template* ``sigma_i`` (Section IV-A of the paper): a set of time slots, one
per vertex, each pinned to a processor.  At run time the template is used as a
lookup table -- job ``v`` of a dag-job released at time ``r`` executes on its
assigned processor in the window ``[r + start, r + end)``, and the processor
idles out the remainder of the slot if the job finishes early.  This is what
makes the approach immune to Graham's timing anomalies (re-running LS online
with smaller-than-WCET execution times may *lengthen* the schedule).

:class:`Schedule` also provides full structural validation (slot/ WCET
agreement, processor exclusivity, precedence feasibility), which the test
suite uses as the ground-truth oracle for every scheduling algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.model.dag import DAG, VertexId

__all__ = ["Slot", "Schedule"]

_TOL = 1e-9


@dataclass(frozen=True, order=True)
class Slot:
    """One contiguous execution window of one job on one processor."""

    start: float
    end: float
    processor: int
    vertex: VertexId = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ScheduleError(
                f"slot for {self.vertex!r} has non-positive length "
                f"[{self.start:g}, {self.end:g})"
            )
        if self.start < 0:
            raise ScheduleError(f"slot for {self.vertex!r} starts before time 0")
        if self.processor < 0:
            raise ScheduleError(f"slot for {self.vertex!r} has negative processor index")

    @property
    def length(self) -> float:
        """Duration of the slot."""
        return self.end - self.start


class Schedule:
    """A non-preemptive template schedule of one dag-job on ``m`` processors.

    Parameters
    ----------
    dag:
        The DAG being scheduled.
    slots:
        One :class:`Slot` per vertex of *dag* (each vertex exactly once;
        Graham's LS is non-preemptive so one contiguous slot per job).
    processors:
        The number of processors in the cluster.  Slots must use processor
        indices ``0 .. processors-1``.
    """

    __slots__ = ("_dag", "_slots", "_processors", "_makespan")

    def __init__(self, dag: DAG, slots: Iterable[Slot], processors: int) -> None:
        if processors < 1:
            raise ScheduleError(f"processor count must be >= 1, got {processors}")
        self._dag = dag
        self._processors = processors
        self._slots: dict[VertexId, Slot] = {}
        for slot in slots:
            if slot.vertex not in dag:
                raise ScheduleError(f"slot references unknown vertex {slot.vertex!r}")
            if slot.vertex in self._slots:
                raise ScheduleError(f"vertex {slot.vertex!r} scheduled twice")
            if slot.processor >= processors:
                raise ScheduleError(
                    f"slot for {slot.vertex!r} uses processor {slot.processor} "
                    f"but the cluster has only {processors}"
                )
            self._slots[slot.vertex] = slot
        missing = [v for v in dag.vertices if v not in self._slots]
        if missing:
            raise ScheduleError(
                f"vertices never scheduled: {', '.join(repr(v) for v in missing)}"
            )
        self._makespan = max(s.end for s in self._slots.values())

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def dag(self) -> DAG:
        """The DAG this template schedules."""
        return self._dag

    @property
    def processors(self) -> int:
        """Cluster size the template was built for."""
        return self._processors

    @property
    def makespan(self) -> float:
        """Completion time of the last job (the schedule length)."""
        return self._makespan

    def slot(self, vertex: VertexId) -> Slot:
        """The slot assigned to *vertex*."""
        try:
            return self._slots[vertex]
        except KeyError:
            raise ScheduleError(f"vertex {vertex!r} not in schedule") from None

    @property
    def slots(self) -> tuple[Slot, ...]:
        """All slots sorted by start time."""
        return tuple(sorted(self._slots.values()))

    def slots_on(self, processor: int) -> tuple[Slot, ...]:
        """Slots on one processor, sorted by start time."""
        return tuple(
            sorted(s for s in self._slots.values() if s.processor == processor)
        )

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:
        return (
            f"Schedule(m={self._processors}, |V|={len(self._slots)}, "
            f"makespan={self._makespan:g})"
        )

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def total_idle_time(self) -> float:
        """Idle processor-time within ``[0, makespan)`` across the cluster."""
        busy = sum(s.length for s in self._slots.values())
        return self._processors * self._makespan - busy

    @property
    def average_utilization(self) -> float:
        """Fraction of the cluster kept busy over ``[0, makespan)``."""
        if self._makespan == 0:
            return 0.0
        busy = sum(s.length for s in self._slots.values())
        return busy / (self._processors * self._makespan)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raise :class:`ScheduleError` if any fails.

        Invariants:

        1. each slot's length equals its vertex's WCET;
        2. no two slots on the same processor overlap;
        3. for every edge ``(u, v)``, slot(u).end <= slot(v).start.
        """
        for vertex, slot in self._slots.items():
            wcet = self._dag.wcet(vertex)
            if abs(slot.length - wcet) > _TOL * max(1.0, wcet):
                raise ScheduleError(
                    f"slot of {vertex!r} has length {slot.length:g} but WCET is {wcet:g}"
                )
        for proc in range(self._processors):
            ordered = self.slots_on(proc)
            for a, b in zip(ordered, ordered[1:]):
                if a.end > b.start + _TOL:
                    raise ScheduleError(
                        f"slots of {a.vertex!r} and {b.vertex!r} overlap on "
                        f"processor {proc}"
                    )
        for u, v in self._dag.edges:
            if self._slots[u].end > self._slots[v].start + _TOL:
                raise ScheduleError(
                    f"precedence violated: {u!r} ends at {self._slots[u].end:g} "
                    f"but successor {v!r} starts at {self._slots[v].start:g}"
                )

    def is_valid(self) -> bool:
        """True if :meth:`validate` passes."""
        try:
            self.validate()
        except ScheduleError:
            return False
        return True

    def meets_deadline(self, deadline: float) -> bool:
        """True if the makespan is within *deadline* (with tolerance)."""
        return self._makespan <= deadline + _TOL

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def as_gantt_text(self, width: int = 60) -> str:
        """A fixed-width ASCII Gantt chart of the template (for examples/docs)."""
        if self._makespan <= 0:
            return "(empty schedule)"
        scale = width / self._makespan
        lines = []
        for proc in range(self._processors):
            row = [" "] * width
            for slot in self.slots_on(proc):
                lo = int(round(slot.start * scale))
                hi = max(lo + 1, int(round(slot.end * scale)))
                label = str(slot.vertex)
                for col in range(lo, min(hi, width)):
                    row[col] = "#"
                for offset, ch in enumerate(label):
                    if lo + offset < min(hi, width):
                        row[lo + offset] = ch
            lines.append(f"P{proc:<3}|{''.join(row)}|")
        lines.append(f"     0{' ' * (width - 12)}{self._makespan:>10.2f}")
        return "\n".join(lines)

    def shifted(self, offset: float) -> Mapping[VertexId, Slot]:
        """The absolute-time slots of a dag-job released at time *offset*.

        Used by the run-time dispatcher / simulator: the template is relative
        to the release instant.
        """
        return {
            v: Slot(
                start=s.start + offset,
                end=s.end + offset,
                processor=s.processor,
                vertex=v,
            )
            for v, s in self._slots.items()
        }
