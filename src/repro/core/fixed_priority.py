"""Uniprocessor fixed-priority (FP) scheduling analysis.

The paper's shared pool runs preemptive EDF; the classic alternative is
preemptive fixed-priority scheduling with deadline-monotonic (DM) priority
assignment, which is optimal among fixed-priority orders for constrained-
deadline sporadic tasks [Leung & Whitehead 1982].  This module provides the
substrate the :mod:`repro.extensions.fixed_priority_pool` variant of FEDCONS
builds on:

* :func:`response_time_analysis` -- the exact worst-case response time of
  each task via the standard recurrence (Joseph & Pandya 1986; Audsley et
  al. 1993)::

      R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j

  iterated to a fixed point.  For constrained deadlines the synchronous
  arrival pattern is the critical instant, so the analysis is exact.
* :func:`fp_exact_test` -- schedulability under a given priority order.
* :func:`rbf_approx_test` -- the linear-time sufficient test of Fisher,
  Baruah & Baker (the FP analogue of DBF*)::

      C_i + sum_{j in hp(i)} (C_j + u_j * D_i) <= D_i

* :func:`deadline_monotonic` -- the DM priority order.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.model.sporadic import SporadicTask

__all__ = [
    "deadline_monotonic",
    "response_time_analysis",
    "fp_exact_test",
    "rbf_approx_test",
]

_TOL = 1e-9


def deadline_monotonic(tasks: Sequence[SporadicTask]) -> list[SporadicTask]:
    """Tasks sorted highest-priority-first by relative deadline (ties by
    input position, for determinism)."""
    indexed = list(enumerate(tasks))
    indexed.sort(key=lambda pair: (pair[1].deadline, pair[0]))
    return [task for _, task in indexed]


def response_time_analysis(
    tasks: Sequence[SporadicTask],
    max_iterations: int = 10_000,
) -> list[float] | None:
    """Worst-case response times under the given priority order
    (``tasks[0]`` highest).

    Returns the per-task response times, or ``None`` as soon as some task's
    recurrence exceeds its deadline (the iteration is monotone increasing,
    so overshooting the deadline proves unschedulability for constrained
    deadlines).

    Raises
    ------
    AnalysisError
        If any task has ``D > T`` (the synchronous critical instant argument
        needs constrained deadlines), or the iteration budget is exhausted
        (cannot happen for constrained deadlines with ``U < 1``; the guard
        protects against adversarial floats).
    """
    for task in tasks:
        if task.deadline > task.period + _TOL:
            raise AnalysisError(
                "response_time_analysis requires constrained deadlines; "
                f"task {task.name or task!r} has D > T"
            )
    responses: list[float] = []
    for i, task in enumerate(tasks):
        higher = tasks[:i]
        response = task.wcet + sum(t.wcet for t in higher)
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / t.period - _TOL) * t.wcet for t in higher
            )
            new_response = task.wcet + interference
            if new_response > task.deadline + _TOL:
                return None
            if abs(new_response - response) <= _TOL:
                response = new_response
                break
            response = new_response
        else:
            raise AnalysisError(
                f"RTA failed to converge within {max_iterations} iterations"
            )
        responses.append(response)
    return responses


def fp_exact_test(tasks: Sequence[SporadicTask]) -> bool:
    """Exact FP schedulability under the given order (``tasks[0]`` highest)."""
    if not tasks:
        return True
    return response_time_analysis(tasks) is not None


def rbf_approx_test(tasks: Sequence[SporadicTask]) -> bool:
    """Linear-time sufficient FP test (Fisher-Baruah-Baker request bound).

    Task ``i`` meets its deadline if its own WCET plus the linearised
    higher-priority request bound fits its deadline::

        C_i + sum_{j in hp(i)} (C_j + u_j * D_i) <= D_i
    """
    for i, task in enumerate(tasks):
        demand = task.wcet + sum(
            t.wcet + t.utilization * task.deadline for t in tasks[:i]
        )
        if demand > task.deadline + _TOL:
            return False
    return True
