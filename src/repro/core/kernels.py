"""Compiled analysis kernels: flat-array LS, vectorized DBF*, and QPA.

The three analysis hot loops -- Graham List Scheduling inside the MINPROCS
mu-search (Fig. 3), DBF* demand evaluation inside PARTITION (Baruah & Fisher
2006), and the exact processor-demand oracle -- are pure functions that the
experiment sweeps and the online controller call millions of times.  This
module provides faster *drop-in* implementations of each, with one hard
contract:

    **every kernel is bit-identical to the plain-Python path it replaces** --
    same schedules, same makespans, same partition assignments, same
    accept/reject verdicts, down to the last float.

The repo's determinism, golden-CSV and replay tests depend on that contract;
:mod:`tests.test_kernels` enforces it property-by-property with Hypothesis.

Three kernels live here:

:class:`CompiledDAG`
    an int-indexed flat view of a :class:`~repro.model.dag.DAG` (WCET vector,
    CSR successor/predecessor adjacency, indegree template, upward ranks,
    per-named-order priority permutations), compiled once per DAG and
    memoized on the DAG instance (plus the digest-keyed ``compiled`` LRU when
    the analysis caches are on).  :func:`ls_run` then executes Graham LS as
    an index-based heap loop with no ``repr`` churn, no per-call priority
    re-sort, no ``dict(dag.wcets)`` copy, and no dict-keyed heaps --
    MINPROCS reuses one artifact across all its mu attempts.

:func:`dbf_star_totals` / :func:`dbf_star_all_within`
    ``sum_i DBF*(tau_i, t)`` over a whole vector of test points in one numpy
    pass.  The accumulation is **per-task sequential** (``total += row``),
    not ``np.sum`` (which sums pairwise and would round differently), so
    each total is bit-identical to the scalar left-to-right Python sum.

:func:`qpa_exact_test`
    Quick Processor-demand Analysis (Zhang & Burns, IEEE TC 2009): instead
    of scanning *every* absolute deadline in the testing interval, iterate
    ``t <- largest breakpoint < h(t) - tol`` backwards from the end of the
    interval.  See the function docstring for the equivalence argument with
    the repo's toleranced breakpoint scan.

Kernels are **enabled by default** and can be switched off globally
(``disable_kernels()``, or ``REPRO_KERNELS=0`` in the environment) or per
block (``with use_kernels(False): ...``) -- the equivalence tests run both
sides of every comparison this way.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager

import numpy as np

from repro.errors import AnalysisError
from repro.core.cache import MISSING, caches as _caches
from repro.core.schedule import Schedule, Slot
from repro.model.dag import DAG
from repro.model.sporadic import SporadicTask

__all__ = [
    "CompiledDAG",
    "compile_dag",
    "ls_run",
    "build_schedule",
    "dbf_star_totals",
    "dbf_star_all_within",
    "latest_breakpoint",
    "qpa_exact_test",
    "flags",
    "kernels_enabled",
    "enable_kernels",
    "disable_kernels",
    "use_kernels",
    "kernel_backend",
    "set_kernel_backend",
    "use_kernel_backend",
]


class KernelFlags:
    """The process-wide kernel switch (one attribute read on the hot path).

    ``enabled`` keeps the historical on/off semantics of ``REPRO_KERNELS``
    (``0``/``off``/``false``/``no`` fall back to the pure-Python reference
    paths).  ``backend`` selects *which* compiled tier answers while kernels
    are on: ``"numpy"`` (the default flat-array tier) or ``"jit"``
    (``REPRO_KERNELS=jit``), which routes :func:`ls_run` and
    :func:`dbf_star_totals` through the optional :mod:`repro.core.jit`
    numba backend and degrades silently to the NumPy tier when numba is not
    installed.
    """

    __slots__ = ("enabled", "backend")

    def __init__(self) -> None:
        raw = os.environ.get("REPRO_KERNELS", "1").lower()
        self.enabled = raw not in ("0", "off", "false", "no")
        self.backend = "jit" if raw == "jit" else "numpy"


#: Global switch consulted by every routed hot path.
flags = KernelFlags()


def kernels_enabled() -> bool:
    """Whether the compiled kernels are currently active."""
    return flags.enabled


def enable_kernels() -> None:
    """Route the analysis hot paths through the compiled kernels (default)."""
    flags.enabled = True


def disable_kernels() -> None:
    """Fall back to the plain-Python reference implementations."""
    flags.enabled = False


@contextmanager
def use_kernels(enabled: bool = True) -> Iterator[None]:
    """Scoped kernel switch; restores the previous state afterwards."""
    previous = flags.enabled
    flags.enabled = enabled
    try:
        yield
    finally:
        flags.enabled = previous


def kernel_backend() -> str:
    """The active compiled tier: ``"numpy"`` or ``"jit"``.

    ``"jit"`` means the numba tier is *requested*; whether it actually
    answers depends on :func:`repro.core.jit.available` (absent numba
    degrades silently to the NumPy tier with identical results).
    """
    return flags.backend


def set_kernel_backend(backend: str) -> None:
    """Select the compiled tier (``"numpy"`` or ``"jit"``) process-wide."""
    if backend not in ("numpy", "jit"):
        raise AnalysisError(
            f"unknown kernel backend {backend!r}; available: ['jit', 'numpy']"
        )
    flags.backend = backend


@contextmanager
def use_kernel_backend(backend: str) -> Iterator[None]:
    """Scoped backend selection; restores the previous tier afterwards."""
    previous = flags.backend
    set_kernel_backend(backend)
    try:
        yield
    finally:
        flags.backend = previous


# ---------------------------------------------------------------------------
# CompiledDAG: the flat, int-indexed List-Scheduling artifact
# ---------------------------------------------------------------------------

class CompiledDAG:
    """Flat int-indexed structures of one DAG, shared across many LS runs.

    Vertex ``i`` is the ``i``-th vertex of ``dag.vertices`` (the DAG's
    canonical topological order); the artifact holds no reference back to the
    DAG, so it can live in the digest-keyed analysis cache without pinning
    model objects.
    """

    __slots__ = (
        "vertices",
        "index",
        "wcet",
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "indegree",
        "_upward",
        "_priority",
        "_jit_arrays",
    )

    def __init__(self, dag: DAG) -> None:
        verts = dag.vertices
        index = {v: i for i, v in enumerate(verts)}
        #: Vertices in topological order (``vertices[i]`` names index ``i``).
        self.vertices = verts
        #: Vertex identifier -> flat index.
        self.index = index
        #: ``wcet[i]`` -- execution time of vertex ``i``.
        self.wcet = [dag.wcet(v) for v in verts]
        succ_indptr = [0]
        succ_indices: list[int] = []
        pred_indptr = [0]
        pred_indices: list[int] = []
        for v in verts:
            succ_indices.extend(index[s] for s in dag.successors(v))
            succ_indptr.append(len(succ_indices))
            pred_indices.extend(index[p] for p in dag.predecessors(v))
            pred_indptr.append(len(pred_indices))
        #: CSR adjacency: successors of ``i`` are
        #: ``succ_indices[succ_indptr[i]:succ_indptr[i + 1]]``.
        self.succ_indptr = succ_indptr
        self.succ_indices = succ_indices
        #: CSR adjacency of immediate predecessors (same layout).
        self.pred_indptr = pred_indptr
        self.pred_indices = pred_indices
        #: Indegree template; :func:`ls_run` copies it per run.
        self.indegree = [pred_indptr[i + 1] - pred_indptr[i] for i in range(len(verts))]
        self._upward: list[float] | None = None
        self._priority: dict[str, list[int]] = {}
        #: numpy mirrors built lazily by the jit tier (wcet, indptr, succ,
        #: indegree); ``None`` until the first jit-backed :func:`ls_run`.
        self._jit_arrays: tuple | None = None

    def __len__(self) -> int:
        return len(self.wcet)

    def upward_rank(self) -> list[float]:
        """Longest-chain length starting at each vertex (inclusive), by index.

        Float-identical to ``list_scheduling._upward_rank``: same reverse
        topological sweep, same ``wcet + max(successor ranks)`` expression.
        """
        rank = self._upward
        if rank is None:
            n = len(self.wcet)
            rank = [0.0] * n
            wcet = self.wcet
            indptr = self.succ_indptr
            succ = self.succ_indices
            for i in range(n - 1, -1, -1):
                tail = max(
                    (rank[j] for j in succ[indptr[i]:indptr[i + 1]]), default=0.0
                )
                rank[i] = wcet[i] + tail
            self._upward = rank
        return rank

    def priority(self, order: str) -> list[int]:
        """Priority ranks by vertex index for a *named* order, memoized.

        ``priority(order)[i]`` equals the rank of vertex ``i`` in
        ``priority_list(dag, order)``; the tie-breaks (topological position)
        match ``list_scheduling._order_*`` exactly, so the LS heap pops in
        the identical sequence.
        """
        prio = self._priority.get(order)
        if prio is not None:
            return prio
        n = len(self.wcet)
        if order == "topological":
            perm = list(range(n))
        elif order == "longest_path":
            rank = self.upward_rank()
            perm = sorted(range(n), key=lambda i: (-rank[i], i))
        elif order == "largest_wcet":
            wcet = self.wcet
            perm = sorted(range(n), key=lambda i: (-wcet[i], i))
        elif order == "smallest_wcet":
            wcet = self.wcet
            perm = sorted(range(n), key=lambda i: (wcet[i], i))
        else:
            # Same message as priority_list's unknown-order error.
            raise AnalysisError(
                f"unknown priority order {order!r}; available: "
                f"{sorted(('topological', 'longest_path', 'largest_wcet', 'smallest_wcet'))}"
            )
        prio = [0] * n
        for rank_position, i in enumerate(perm):
            prio[i] = rank_position
        self._priority[order] = prio
        return prio


def compile_dag(dag: DAG) -> CompiledDAG:
    """The (memoized) compiled artifact of *dag*.

    Compiled once per DAG instance; when the analysis caches are enabled the
    artifact is additionally shared across digest-equal DAG instances via
    ``caches.compiled``.
    """
    compiled = dag._compiled
    if compiled is not None:
        return compiled
    if _caches.enabled:
        key = dag.digest()
        hit = _caches.compiled.get(key)
        if hit is not MISSING:
            dag._compiled = hit
            return hit
        compiled = CompiledDAG(dag)
        _caches.compiled.put(key, compiled)
    else:
        compiled = CompiledDAG(dag)
    dag._compiled = compiled
    return compiled


def ls_run(
    compiled: CompiledDAG, processors: int, prio: Sequence[int]
) -> tuple[float, list[tuple[int, float, float, int]]]:
    """One Graham LS pass over a compiled DAG.

    Returns ``(makespan, raw)`` where ``raw`` lists
    ``(vertex_index, start, end, processor)`` in assignment order --
    exactly the slots :func:`repro.core.list_scheduling.list_schedule`
    produces, by construction: priority ranks are unique ints, so every heap
    comparison resolves on the first tuple element and the pop order is
    identical to the dict-keyed reference loop; start/end times are the same
    ``now + wcet`` float expressions.

    With ``REPRO_KERNELS=jit`` (and numba importable) the loop runs in the
    compiled :mod:`repro.core.jit` tier instead -- pop order and float
    expressions are identical (unique heap keys fully determine the pop
    sequence of any correct binary heap), so the returned slots are
    bit-identical across all three tiers.
    """
    if flags.backend == "jit":
        from repro.core import jit as _jit

        result = _jit.ls_run(compiled, processors, prio)
        if result is not None:
            return result
    n = len(compiled.wcet)
    wcet = compiled.wcet
    indptr = compiled.succ_indptr
    succ = compiled.succ_indices
    indegree = list(compiled.indegree)

    ready = [(prio[i], i) for i in range(n) if indegree[i] == 0]
    heapq.heapify(ready)
    tie = 0
    running: list[tuple[float, int, int]] = []
    idle = processors
    now = 0.0
    raw: list[tuple[int, float, float, int]] = []
    assigned = [0] * n
    free_procs = list(range(processors - 1, -1, -1))
    makespan = 0.0

    scheduled = 0
    while scheduled < n:
        while ready and idle > 0:
            _, i = heapq.heappop(ready)
            proc = free_procs.pop()
            assigned[i] = proc
            end = now + wcet[i]
            raw.append((i, now, end, proc))
            if end > makespan:
                makespan = end
            heapq.heappush(running, (end, tie, i))
            tie += 1
            idle -= 1
            scheduled += 1
        if scheduled >= n:
            break
        if not running:
            raise AnalysisError(
                "LS deadlocked: no running job but unscheduled vertices remain"
            )
        now = running[0][0]
        while running and running[0][0] <= now:
            _, _, done = heapq.heappop(running)
            free_procs.append(assigned[done])
            idle += 1
            for k in range(indptr[done], indptr[done + 1]):
                j = succ[k]
                indegree[j] -= 1
                if indegree[j] == 0:
                    heapq.heappush(ready, (prio[j], j))
    return makespan, raw


def build_schedule(
    dag: DAG,
    compiled: CompiledDAG,
    processors: int,
    raw: Sequence[tuple[int, float, float, int]],
) -> Schedule:
    """Materialize an :func:`ls_run` result as a full :class:`Schedule`.

    MINPROCS probes many mu values but only the first fitting one needs Slot
    objects and validation; this is the deferred expensive half.
    """
    vertices = compiled.vertices
    slots = [
        Slot(start=start, end=end, processor=proc, vertex=vertices[i])
        for i, start, end, proc in raw
    ]
    return Schedule(dag, slots, processors)


# ---------------------------------------------------------------------------
# Vectorized DBF*
# ---------------------------------------------------------------------------

def dbf_star_totals(
    tasks: Sequence[SporadicTask], points: Sequence[float]
) -> np.ndarray:
    """``sum_i DBF*(tau_i, t)`` for every ``t`` in *points*, in one pass.

    Bit-identical to calling ``total_dbf_approx`` at each point: tasks are
    accumulated **sequentially in input order** (``total += row``) rather
    than with ``np.sum`` (whose pairwise summation rounds differently), and
    each row is the same ``C + u * (t - D)`` expression ``dbf_approx`` uses.

    Under ``REPRO_KERNELS=jit`` the same sequential accumulation runs in the
    numba tier (:mod:`repro.core.jit`) -- identical per-element IEEE ops in
    the identical order, hence identical totals.
    """
    if flags.backend == "jit":
        from repro.core import jit as _jit

        totals = _jit.dbf_star_totals(tasks, points)
        if totals is not None:
            return totals
    pts = np.asarray(points, dtype=float)
    total = np.zeros(pts.shape)
    for task in tasks:
        deadline = task.deadline
        total += np.where(
            pts < deadline,
            0.0,
            task.wcet + task.utilization * (pts - deadline),
        )
    return total


def dbf_star_all_within(
    tasks: Sequence[SporadicTask], points: Sequence[float], tol: float
) -> bool:
    """True iff ``sum_i DBF*(tau_i, t) <= t + tol`` at every point."""
    pts = np.asarray(points, dtype=float)
    totals = dbf_star_totals(tasks, pts)
    return not bool(np.any(totals > pts + tol))


# ---------------------------------------------------------------------------
# QPA: Quick Processor-demand Analysis (Zhang & Burns 2009)
# ---------------------------------------------------------------------------

def latest_breakpoint(
    tasks: Sequence[SporadicTask], x: float, strict: bool = False
) -> float | None:
    """The largest demand breakpoint ``k * T_i + D_i`` at most (below) *x*.

    Breakpoints are the absolute deadlines of the synchronous arrival
    pattern, the exact points ``demand_breakpoints`` enumerates; each
    candidate is computed with the same ``k * period + deadline`` float
    expression as ``SporadicTask.deadlines_in`` (integer ``k``), with a
    guarded +-1 adjustment so float rounding in the initial
    ``floor((x - D) / T)`` estimate can never select the wrong neighbour.

    With ``strict=True`` returns the largest breakpoint strictly below *x*;
    ``None`` when no breakpoint qualifies.
    """
    best: float | None = None
    for task in tasks:
        deadline = task.deadline
        period = task.period
        if deadline >= x if strict else deadline > x:
            continue
        k = math.floor((x - deadline) / period)
        if strict:
            while k >= 0 and k * period + deadline >= x:
                k -= 1
            while (k + 1) * period + deadline < x:
                k += 1
        else:
            while k >= 0 and k * period + deadline > x:
                k -= 1
            while (k + 1) * period + deadline <= x:
                k += 1
        if k < 0:
            continue
        candidate = k * period + deadline
        if best is None or candidate > best:
            best = candidate
    return best


def qpa_exact_test(
    tasks: Sequence[SporadicTask],
    bound: float,
    total_demand: Callable[[Sequence[SporadicTask], float], float],
    tol: float,
) -> bool:
    """Exact EDF processor-demand test via backward fixed-point iteration.

    Decision-equivalent to scanning every breakpoint ``d`` in ``(0, bound]``
    for ``h(d) > d + tol`` (``h`` = *total_demand*, the exact aggregate
    ``dbf``), but visits only a short chain of points:

    1. start at ``t`` = the largest breakpoint ``<= bound``;
    2. if ``h(t) > t + tol`` -- a genuine violation at a breakpoint -- fail;
    3. otherwise no breakpoint in ``[h(t) - tol, t]`` can violate (any
       violating ``d`` satisfies ``d < h(d) - tol <= h(t) - tol`` because
       ``h`` is non-decreasing), so jump to the largest breakpoint strictly
       below ``h(t) - tol`` and repeat; pass when none remains.

    Termination: ``h(t) - tol <= t`` whenever step 2 passes, so ``t``
    strictly decreases over the finite breakpoint set.  Soundness: step 3's
    jump never skips a violating breakpoint, and step 2 only fails on points
    the scan would also fail on -- hence bit-identical verdicts.
    """
    t = latest_breakpoint(tasks, bound, strict=False)
    while t is not None:
        demand = total_demand(tasks, t)
        if demand > t + tol:
            return False
        t = latest_breakpoint(tasks, demand - tol, strict=True)
    return True
