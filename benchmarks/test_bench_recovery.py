"""Recovery bench: checkpoint + journal-tail replay vs full genesis replay.

A 1000-event admission trace is journaled through a
:class:`repro.online.DurableController` with checkpoint rotation, producing
the durable state a crashed server would leave behind.  Recovery is then
timed two ways:

* **from the latest checkpoint** -- restore the lossless snapshot (no
  analysis re-run: templates reload from their serialized slots, shard
  ledgers recompute from sorted entries) and replay only the journal records
  after the checkpoint offset;
* **from genesis** -- replay every journal record through the real
  controller, i.e. re-run every MINPROCS search and every shard probe of the
  server's entire history.

Both recoveries must land on the *same* state (snapshot-identical, exact
verification passing); the tentpole's acceptance criterion -- checkpoint
recovery >= 10x faster than genesis replay -- is asserted here, and the
timings land in ``benchmarks/BENCH_recovery.json`` for PR-to-PR tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.generation.tasksets import SystemConfig
from repro.generation.traces import TraceConfig, generate_trace
from repro.online import (
    AdmissionController,
    DurableController,
    Journal,
    load_checkpoint,
    recover,
    replay,
)

ARTIFACT = Path(__file__).parent / "BENCH_recovery.json"

_SEED = 0
_EVENTS = 1000
_CHECKPOINT_EVERY = 50
_CONFIG = TraceConfig(
    events=_EVENTS,
    processors=48,
    mean_lifetime=200.0,
    heavy_fraction=0.15,
    shape=SystemConfig(
        min_vertices=4, max_vertices=12, deadline_ratio=(0.35, 1.0)
    ),
)


def test_bench_recovery(tmp_path):
    trace = generate_trace(_CONFIG, _SEED)
    journal_path = tmp_path / "server.journal"
    checkpoint_path = tmp_path / "server.ckpt.json"

    # Build the durable state a crashed server leaves behind (fsync off:
    # the "crash" is simulated, and we are timing recovery, not commits).
    with Journal(journal_path, fsync="off") as journal:
        durable = DurableController(
            AdmissionController(_CONFIG.processors), journal,
            checkpoint_path=checkpoint_path,
            checkpoint_every=_CHECKPOINT_EVERY,
        )
        report = replay(durable, trace)
        entries = journal.entries

    _, checkpoint_offset = load_checkpoint(checkpoint_path)
    tail = entries - checkpoint_offset

    started = time.perf_counter()
    from_ckpt, ckpt_report = recover(checkpoint_path, journal_path)
    checkpoint_seconds = time.perf_counter() - started
    assert ckpt_report.checkpoint_used
    assert ckpt_report.replayed == tail

    started = time.perf_counter()
    from_genesis, genesis_report = recover(None, journal_path)
    genesis_seconds = time.perf_counter() - started
    assert not genesis_report.checkpoint_used
    assert genesis_report.replayed == entries - 1

    # Both paths must reach the same state, and a sound one.
    assert from_ckpt.snapshot() == from_genesis.snapshot()
    assert from_ckpt.verify(exact=True)

    speedup = genesis_seconds / checkpoint_seconds if checkpoint_seconds else 0.0
    ARTIFACT.write_text(
        json.dumps(
            {
                "events": report.events,
                "processors": _CONFIG.processors,
                "seed": _SEED,
                "journal_entries": entries,
                "checkpoint_every": _CHECKPOINT_EVERY,
                "checkpoint_offset": checkpoint_offset,
                "tail_replayed": tail,
                "peak_admitted": report.peak_admitted,
                "admitted_at_crash": from_ckpt.admitted_count,
                "checkpoint_recovery_seconds": checkpoint_seconds,
                "genesis_replay_seconds": genesis_seconds,
                "speedup": speedup,
            },
            indent=2,
        )
        + "\n"
    )

    print(
        f"\nrecovery of {entries} journaled event(s): checkpoint "
        f"{checkpoint_seconds:.3f}s (tail of {tail}) vs genesis replay "
        f"{genesis_seconds:.3f}s ({speedup:.0f}x)"
    )

    # The tentpole's acceptance criterion.
    assert speedup >= 10.0, (
        f"checkpoint recovery only {speedup:.1f}x faster than genesis "
        f"replay ({checkpoint_seconds:.3f}s vs {genesis_seconds:.3f}s)"
    )
