"""LEM2 bench: PARTITION admission-test comparison on low-density systems."""

from repro.experiments.runner import run_experiment


def test_bench_partition(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("LEM2", samples=15, seed=0, quick=True)
    )
    table = tables[0]
    dbf_col = table.column("DBF* (paper)")
    exact_col = table.column("exact EDF admission")
    density_col = table.column("density admission")
    for dbf, exact, dens in zip(dbf_col, exact_col, density_col):
        # Exact admission accepts at least as much as DBF*, which accepts at
        # least as much as the density test (the orderings Lemma 2 implies).
        assert exact >= dbf - 1e-9
        assert dbf >= dens - 1e-9
    show(tables)
