"""EXP-I bench: shared-pool policy ablation (EDF vs DM fixed priority)."""

from repro.experiments.runner import run_experiment


def test_bench_pool_policy(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-I", samples=20, seed=0, quick=True)
    )
    table = tables[0]
    edf = table.column("EDF + DBF* (paper)")
    dm_exact = table.column("DM + exact RTA")
    dm_rbf = table.column("DM + linear RBF")
    # Like-for-like approximate comparison: EDF+DBF* >= DM+RBF throughout
    # (up to small sampling noise).
    assert all(e >= r - 0.1 for e, r in zip(edf, dm_rbf))
    # The exact DM admission dominates its own approximation.
    assert all(x >= r - 1e-9 for x, r in zip(dm_exact, dm_rbf))
    show(tables)
