"""EXP-F bench: PARTITION design-choice ablation."""

from repro.experiments.runner import run_experiment


def test_bench_ablation(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-F", samples=20, seed=0, quick=True)
    )
    table = tables[0]
    rows = {
        (r[0], r[1], r[2]): sum(r[3:]) for r in table.rows
    }
    paper_combo = rows[("deadline", "first_fit", "dbf_approx")]
    # DBF* admission dominates the density admission for the paper's
    # ordering and fit.
    density_combo = rows[("deadline", "first_fit", "density")]
    assert paper_combo >= density_combo - 1e-9
    show(tables)
