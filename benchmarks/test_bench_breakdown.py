"""EXP-J bench: breakdown utilization across algorithms."""

from repro.experiments.runner import run_experiment


def test_bench_breakdown(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-J", samples=8, seed=0, quick=True)
    )
    table = tables[0]
    means = dict(zip(table.column("algorithm"), table.column("mean")))
    # Federation's raison d'etre: it sustains strictly more load than the
    # fully-partitioned approach on identical instances.
    assert means["FEDCONS"] > means["PARTITIONED"]
    # The scaling search always terminates (densities shrink with speed).
    assert all(n == 0 for n in table.column("never accepts"))
    show(tables)
