"""EXP-N bench: analytic response-time headroom."""

from repro.experiments.runner import run_experiment


def test_bench_response(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-N", samples=10, seed=0, quick=True)
    )
    table = tables[0]
    # Acceptance is a deadline guarantee: every response bound fits.
    assert all(v <= 1.0 + 1e-9 for v in table.column("max WCRT/D"))
    assert all(v <= 1.0 + 1e-9 for v in table.column("p95 WCRT/D (all)"))
    show(tables)
