"""Service bench: batched admission throughput + verified failover time.

Two gates from the admission-as-a-service tentpole, both measured against a
*real* primary process (spawned ``fedcons-serve serve``, batch group
commit, durability on):

* **Throughput** -- concurrent clients pipeline an admit-heavy trace at the
  server; sustained admissions/sec must be >= 500 *and* >= 20x the
  per-event full-re-analysis baseline (re-running the two-phase FEDCONS
  batch analysis after every event -- what a service without incremental
  state would pay).  Decisions are cross-checked record by record against a
  fresh sequential replay of the committed journal: the coalesced batches
  must be byte-identical to the sequential golden order the journal
  defines.

* **Failover** -- a kill-primary drill (SIGKILL mid-load) promotes the
  warm standby with ``recover(verify=True)``; the verified takeover must
  finish within 2x the time of a checkpoint recovery of the same state
  (the non-replicated alternative), and the measured failover time and
  replication staleness land in ``benchmarks/BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.generation.tasksets import SystemConfig
from repro.generation.traces import TraceConfig, generate_trace
from repro.online import Journal, recover, write_checkpoint
from repro.service.drill import (
    controller_from_records,
    drive_admissions,
    run_drill,
    spawn_primary,
)

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

_SEED = 0
_CONCURRENCY = 8
_LOAD_CONFIG = TraceConfig(
    events=700,
    processors=128,
    mean_lifetime=1e6,  # nothing departs: the admitted population grows
    heavy_fraction=0.05,
    utilization_low=0.02,
    utilization_high=0.28,
    shape=SystemConfig(
        min_vertices=8, max_vertices=20, deadline_ratio=(0.35, 1.0)
    ),
)
_DRILL_CONFIG = TraceConfig(events=160, processors=16)


def test_bench_service(tmp_path):
    results: dict = {"seed": _SEED}

    # ------------------------------------------------------------------
    # throughput: concurrent pipelined clients vs a real batched primary
    # ------------------------------------------------------------------
    trace = generate_trace(_LOAD_CONFIG, _SEED)
    tasks = [e.task for e in trace if e.op == "admit" and e.task is not None]
    primary = spawn_primary(
        tmp_path / "load.journal",
        processors=_LOAD_CONFIG.processors,
        fsync="batch",
    )
    try:
        responses, elapsed = asyncio.run(drive_admissions(
            "127.0.0.1", primary.tcp_port, tasks, concurrency=_CONCURRENCY
        ))
    finally:
        primary.terminate()
    assert len(responses) == len(tasks), (
        f"load run incomplete: {len(responses)}/{len(tasks)} responses"
    )
    accepted = sum(
        1 for r in responses
        if r.get("ok") and r.get("decision", {}).get("accepted")
    )
    sustained = len(responses) / elapsed

    # Byte-identical decisions: the journal defines the canonical sequential
    # order; replaying it oracle-checks every recorded decision against a
    # fresh controller (any divergence raises inside _replay_record).
    records, _ = Journal.read(tmp_path / "load.journal")
    sequential = controller_from_records(records)
    assert sequential.admitted_count == accepted

    # Baseline: per-event full re-analysis of the same committed sequence.
    baseline = controller_from_records(records[:1])
    baseline_seconds = 0.0
    from repro.online.persist import _replay_record

    for record in records[1:]:
        _replay_record(baseline, record)
        started = time.perf_counter()
        baseline.reanalyze()
        baseline_seconds += time.perf_counter() - started
    baseline_rate = len(tasks) / baseline_seconds
    speedup = sustained / baseline_rate

    results.update({
        "load_events": len(tasks),
        "load_processors": _LOAD_CONFIG.processors,
        "concurrency": _CONCURRENCY,
        "accepted": accepted,
        "elapsed_seconds": elapsed,
        "sustained_admissions_per_sec": sustained,
        "baseline_reanalysis_seconds": baseline_seconds,
        "baseline_admissions_per_sec": baseline_rate,
        "speedup_vs_per_event_reanalysis": speedup,
        "decisions_sequential_identical": True,  # asserted above
    })

    print(
        f"\nservice throughput: {len(tasks)} admits in {elapsed:.3f}s = "
        f"{sustained:.0f}/s (baseline re-analysis {baseline_rate:.1f}/s, "
        f"{speedup:.0f}x)"
    )

    # ------------------------------------------------------------------
    # failover drill: SIGKILL mid-load, verified standby promotion
    # ------------------------------------------------------------------
    drill_trace = generate_trace(_DRILL_CONFIG, _SEED + 1)
    drill_tasks = [
        e.task for e in drill_trace if e.op == "admit" and e.task is not None
    ]
    report = run_drill(
        drill_tasks, tmp_path / "drill",
        processors=_DRILL_CONFIG.processors,
        concurrency=4,
        kill_after=max(8, len(drill_tasks) // 2),
    )
    assert report.verified, "promotion skipped the recover(verify=True) gate"
    assert report.prefix_consistent, (
        "promoted standby diverges from the primary's journal prefix"
    )
    assert report.staleness >= 0

    # Comparator: checkpoint recovery of the very state the standby serves
    # (rebuild from its journal, checkpoint 50 records behind the end -- the
    # cadence benchmarks/test_bench_recovery.py uses -- then time a verified
    # recover: the non-replicated failover alternative).
    standby_records, _ = Journal.read(tmp_path / "drill" / "standby.journal")
    comparator_journal = tmp_path / "comparator.journal"
    with Journal(comparator_journal, fsync="off") as journal:
        for record in standby_records:
            journal.append(record)
    checkpoint_offset = max(1, len(standby_records) - 50)
    at_offset = controller_from_records(standby_records[:checkpoint_offset])
    checkpoint_path = tmp_path / "comparator.ckpt.json"
    write_checkpoint(at_offset, checkpoint_path, checkpoint_offset)
    started = time.perf_counter()
    recovered, _ = recover(checkpoint_path, comparator_journal, verify=True)
    checkpoint_recovery_seconds = time.perf_counter() - started
    ratio = report.failover_seconds / checkpoint_recovery_seconds

    results.update({
        "drill_events": len(drill_tasks),
        "drill_attempted": report.attempted,
        "drill_accepted": report.accepted,
        "drill_admissions_per_sec": report.admissions_per_sec,
        "committed_at_death": report.committed,
        "replicated_at_death": report.replicated,
        "replication_staleness": report.staleness,
        "failover_seconds": report.failover_seconds,
        "promotion_verified": report.verified,
        "prefix_consistent": report.prefix_consistent,
        "checkpoint_recovery_seconds": checkpoint_recovery_seconds,
        "failover_vs_checkpoint_recovery": ratio,
    })

    ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")

    print(
        f"failover: {1e3 * report.failover_seconds:.1f} ms verified takeover "
        f"(staleness {report.staleness}) vs checkpoint recovery "
        f"{1e3 * checkpoint_recovery_seconds:.1f} ms ({ratio:.2f}x)"
    )

    # The tentpole's acceptance criteria.
    assert sustained >= 500.0, (
        f"batched admission sustained only {sustained:.0f}/s (< 500/s)"
    )
    assert speedup >= 20.0, (
        f"service throughput only {speedup:.1f}x the per-event "
        f"re-analysis baseline ({sustained:.0f}/s vs {baseline_rate:.1f}/s)"
    )
    assert ratio <= 2.0, (
        f"verified failover took {ratio:.2f}x a checkpoint recovery "
        f"({report.failover_seconds:.3f}s vs "
        f"{checkpoint_recovery_seconds:.3f}s)"
    )
