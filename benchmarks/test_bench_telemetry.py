"""Telemetry bench: overhead gate, tail latency, trace and flight artifacts.

The telemetry tentpole's acceptance criteria:

* **decisions** -- replaying the committed 200-event golden admission trace
  (``tests/data/online_trace.jsonl``) must yield a byte-identical decision
  CSV with telemetry fully on and fully off (observability must never steer
  the algorithms);
* **tail latency** -- p50/p95/p99 admit latency come from the merged
  ``online.admit_seconds`` histogram, not from retained samples;
* **trace** -- a journaled admission produces one end-to-end span tree:
  ``online.commit`` root with ``online.admit`` and ``online.journal.append``
  descendants;
* **post-mortem** -- an injected crash mid-replay leaves a flight dump whose
  final entries are the decisions immediately preceding the crash;
* **overhead** -- replaying an admission soak with *every* CLI-armable
  facility lit (metrics + histograms, span tracing, flight recorder) must
  cost at most 5% over the dark replay.

The overhead gate needs care on shared CI runners, whose wall-clock noise
(scheduler preemption, cpu-frequency wobble, noisy neighbours) dwarfs a 5%
effect on sub-second runs.  Two noise-robust estimators are computed from
interleaved dark/lit pairs:

* ``min(lit) / min(dark)`` -- exact when each mode catches at least one
  quiet window;
* the 25th percentile of per-pair ratios -- adjacent runs share the same
  noise phase, so pair ratios concentrate near the true overhead and the
  lower quartile sheds one-sided spikes.

The gate takes the smaller of the two (the best available evidence of the
true overhead) and retries the whole measurement a bounded number of times,
because a sustained noisy phase can poison every sample of one attempt.  A
real regression -- telemetry suddenly costing tens of percent -- fails every
attempt on both estimators.

The soak replays a generated 400-event trace against a crowded 96-processor
platform (long mean lifetime, so shards stay fat and every admission pays a
real ``DBF*`` scan): per-event work is ~250us, the regime where fixed
per-admission telemetry cost is proportionally smallest and honestly
representative of a loaded service.

Everything lands in ``benchmarks/BENCH_telemetry.json`` for PR-to-PR
tracking.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.generation.tasksets import SystemConfig
from repro.generation.traces import TraceConfig, generate_trace
from repro.obs.events import tracing
from repro.obs.flight import flight_recording
from repro.obs.metrics import metrics
from repro.obs.spans import SpanTracer, span_tracing
from repro.online import (
    AdmissionController,
    DurableController,
    Journal,
    replay,
)
from repro.online.trace import load_trace

ARTIFACT = Path(__file__).parent / "BENCH_telemetry.json"
GOLDEN_TRACE = Path(__file__).parent.parent / "tests" / "data" / "online_trace.jsonl"

_PROCESSORS = 16

# Overhead soak: crowded platform, fat shards, real per-event DBF* work.
_SOAK = TraceConfig(
    events=400,
    processors=96,
    mean_lifetime=2500.0,
    heavy_fraction=0.05,
    shape=SystemConfig(
        min_vertices=8, max_vertices=16, deadline_ratio=(0.3, 0.8)
    ),
)
_SOAK_SEED = 0
_OVERHEAD_GATE = 1.05
_PAIRS = 20
_ATTEMPTS = 3


def _dark_replay(events, processors) -> float:
    """Time one replay with every telemetry facility off."""
    metrics.disable()
    started = time.perf_counter()
    replay(AdmissionController(processors), events)
    return time.perf_counter() - started


def _lit_replay(events, processors) -> float:
    """Time one replay with every CLI-armable facility lit.

    That is metrics + histograms, span tracing and the flight recorder --
    exactly what ``--prom --trace-out --flight-dir`` arm together.  Decision
    tracing (:func:`repro.obs.events.tracing`) is the CLI's *explain* mode,
    not part of the telemetry surface, so it stays out of the overhead gate.
    """
    metrics.reset()
    metrics.enable()
    try:
        with flight_recording(capacity=256), span_tracing():
            started = time.perf_counter()
            replay(AdmissionController(processors), events)
            return time.perf_counter() - started
    finally:
        metrics.disable()


def _measure_overhead(events, processors) -> dict:
    """One gate attempt: interleaved pairs, both noise-robust estimators."""
    _dark_replay(events, processors)  # warm allocator/caches for both modes
    _lit_replay(events, processors)
    dark_times: list[float] = []
    lit_times: list[float] = []
    pair_ratios: list[float] = []
    for pair in range(_PAIRS):
        # Alternate within-pair order so neither mode systematically runs
        # first (first position pays any residual cache displacement).
        if pair % 2 == 0:
            dark = _dark_replay(events, processors)
            lit = _lit_replay(events, processors)
        else:
            lit = _lit_replay(events, processors)
            dark = _dark_replay(events, processors)
        dark_times.append(dark)
        lit_times.append(lit)
        pair_ratios.append(lit / dark)
    pair_ratios.sort()
    min_ratio = min(lit_times) / min(dark_times)
    quartile_ratio = pair_ratios[len(pair_ratios) // 4]
    return {
        "pairs": _PAIRS,
        "dark_seconds": min(dark_times),
        "lit_seconds": min(lit_times),
        "min_ratio": min_ratio,
        "pair_ratio_p25": quartile_ratio,
        "overhead_ratio": min(min_ratio, quartile_ratio),
    }


def test_bench_telemetry_overhead_and_artifacts(tmp_path):
    events = load_trace(GOLDEN_TRACE)
    assert len(events) == 200

    # -- decisions are identical with telemetry on and off -----------------
    metrics.disable()
    dark = AdmissionController(_PROCESSORS)
    dark_report = replay(dark, events)
    metrics.reset()
    metrics.enable()
    try:
        with flight_recording(capacity=256), span_tracing():
            lit = AdmissionController(_PROCESSORS)
            lit_report = replay(lit, events)
    finally:
        metrics.disable()
    dark_csv = tmp_path / "dark.csv"
    lit_csv = tmp_path / "lit.csv"
    dark_report.to_csv(dark_csv)
    lit_report.to_csv(lit_csv)
    byte_identical = dark_csv.read_bytes() == lit_csv.read_bytes()
    assert byte_identical, "telemetry changed the replayed decisions"
    assert dark.snapshot() == lit.snapshot()

    # -- tail latency from the histogram, span tree from a journaled run --
    metrics.reset()
    metrics.enable()
    tracer = SpanTracer()
    try:
        with span_tracing(tracer):
            with Journal(tmp_path / "bench.journal", fsync="off") as journal:
                replay(
                    DurableController(
                        AdmissionController(_PROCESSORS), journal
                    ),
                    events,
                )
        snapshot = metrics.snapshot()
    finally:
        metrics.disable()
    admit_hist = snapshot["histograms"]["online.admit_seconds"]
    assert admit_hist["count"] > 0
    assert admit_hist["p50"] <= admit_hist["p95"] <= admit_hist["p99"]

    commits = [s for s in tracer.roots() if s.name == "online.commit"]
    assert commits, "journaled replay produced no end-to-end traces"
    golden_commit = next(
        root for root in commits
        if {c.name for c in tracer.children_of(root)}
        >= {"online.admit", "online.journal.append"}
    )
    golden_trace_spans = [
        s.to_dict() for s in tracer.finished
        if s.trace_id == golden_commit.trace_id
    ]

    # -- injected crash leaves a flight dump of the final decisions --------
    crash_at = 150
    dump_dir = tmp_path / "flight"
    previous_hook = sys.excepthook
    sys.excepthook = lambda *exc_info: None  # silence the chained hook
    try:
        with Journal(tmp_path / "crash.journal", fsync="off") as journal:
            durable = DurableController(
                AdmissionController(_PROCESSORS), journal
            )
            with flight_recording(capacity=64, dump_dir=dump_dir):
                with tracing():
                    replay(durable, events[:crash_at])
                try:
                    raise RuntimeError("injected crash: power loss")
                except RuntimeError:
                    sys.excepthook(*sys.exc_info())
            pre_crash_entries = journal.entries
    finally:
        sys.excepthook = previous_hook
    dumps = sorted(dump_dir.glob("flight-*.json"))
    assert len(dumps) == 1
    dump = json.loads(dumps[0].read_text())
    assert dump["reason"] == "excepthook:RuntimeError"
    assert dump["entries"][-1]["kind"] == "crash"
    decision_seqs = [
        e["data"]["seq"] for e in dump["entries"]
        if e["kind"] == "event"
        and e["data"]["event"] in ("Admission", "Departure")
    ]
    # The ring's newest decisions are exactly the journal's final records.
    assert decision_seqs[-1] == pre_crash_entries - 1
    assert decision_seqs == sorted(decision_seqs)

    # -- overhead gate on the admission soak -------------------------------
    soak = generate_trace(_SOAK, _SOAK_SEED)
    attempts = []
    for _ in range(_ATTEMPTS):
        attempts.append(_measure_overhead(soak, _SOAK.processors))
        if attempts[-1]["overhead_ratio"] <= _OVERHEAD_GATE:
            break
    best = min(attempts, key=lambda a: a["overhead_ratio"])
    overhead = best["overhead_ratio"]

    ARTIFACT.write_text(
        json.dumps(
            {
                "events": len(events),
                "processors": _PROCESSORS,
                "decisions_byte_identical": byte_identical,
                "admit_latency_us": {
                    "count": admit_hist["count"],
                    "p50": 1e6 * admit_hist["p50"],
                    "p95": 1e6 * admit_hist["p95"],
                    "p99": 1e6 * admit_hist["p99"],
                    "max": 1e6 * admit_hist["max"],
                },
                "golden_admission_trace": golden_trace_spans,
                "flight_dump": {
                    "reason": dump["reason"],
                    "entries": len(dump["entries"]),
                    "evicted": dump["evicted"],
                    "final_decision_seq": decision_seqs[-1],
                    "journal_entries_at_crash": pre_crash_entries,
                },
                "overhead": {
                    "soak_events": len(soak),
                    "soak_processors": _SOAK.processors,
                    "gate": _OVERHEAD_GATE,
                    "attempts": attempts,
                    "overhead_ratio": overhead,
                },
            },
            indent=2,
        )
        + "\n"
    )

    print(
        f"\ntelemetry soak of {len(soak)} event(s): dark "
        f"{best['dark_seconds']:.3f}s vs fully lit {best['lit_seconds']:.3f}s "
        f"({(overhead - 1) * 100:+.1f}% robust estimate, "
        f"{len(attempts)} attempt(s)); admit p50/p95/p99 "
        f"{1e6 * admit_hist['p50']:.0f}/{1e6 * admit_hist['p95']:.0f}/"
        f"{1e6 * admit_hist['p99']:.0f} us"
    )

    # The tentpole's acceptance criterion.
    assert overhead <= _OVERHEAD_GATE, (
        f"fully-enabled telemetry costs {(overhead - 1) * 100:.1f}% "
        f"(gate: {(_OVERHEAD_GATE - 1) * 100:.0f}%)"
    )
