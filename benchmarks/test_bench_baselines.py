"""EXP-B bench: FEDCONS against global-EDF tests, fully-partitioned
scheduling, and Li et al.'s implicit-deadline federated algorithm."""

from repro.experiments.runner import run_experiment


def test_bench_baselines(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-B", samples=20, seed=0, quick=True)
    )
    main, implicit = tables
    fed = main.column("FEDCONS")
    part = main.column("PARTITIONED")
    # FEDCONS dominates fully-partitioned scheduling at every load level
    # (partitioned cannot host high-density tasks at all).
    assert all(f >= p - 1e-9 for f, p in zip(fed, part))
    assert sum(fed) > sum(part)
    # On the implicit restriction, both federated algorithms track closely.
    fed_i = implicit.column("FEDCONS")
    li_i = implicit.column("Li et al. federated")
    assert all(abs(a - b) <= 0.35 for a, b in zip(fed_i, li_i))
    show(tables)
