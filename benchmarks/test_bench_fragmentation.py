"""EXP-O bench: dedicated-cluster capacity fragmentation."""

import math

from repro.experiments.runner import run_experiment


def test_bench_fragmentation(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-O", samples=10, seed=0, quick=True)
    )
    table = tables[0]
    for row in table.rows:
        _, clusters, _, used, template_idle, duty_idle = row
        if clusters == 0:
            continue
        # The decomposition is exact: the three fractions partition the
        # granted capacity.
        assert math.isclose(used + template_idle + duty_idle, 1.0, abs_tol=1e-6)
        # Inter-job idle is the dominant loss on this workload model.
        assert duty_idle > template_idle
    show(tables)
