"""EXP-E bench: simulation cross-validation of FEDCONS acceptances."""

from repro.experiments.runner import run_experiment


def test_bench_simulation(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-E", samples=4, seed=0, quick=True)
    )
    table = tables[0]
    # The hard guarantee: zero deadline misses under every scenario.
    assert all(m == 0 for m in table.column("deadline misses"))
    # And the analysis is not vacuous: some dag-jobs actually ran.
    assert all(r > 0 for r in table.column("dag-jobs released"))
    # Responses stay within deadlines (ratio <= 1).
    assert all(r <= 1.0 + 1e-9 for r in table.column("max response / deadline"))
    show(tables)
