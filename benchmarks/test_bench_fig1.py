"""FIG1 bench: regenerate the paper's Figure 1 / Example 1 artifact."""

from repro.experiments.runner import run_experiment


def test_bench_fig1(benchmark, show):
    tables = benchmark(lambda: run_experiment("FIG1"))
    quantities, schedules = tables
    measured = dict(zip(quantities.column("quantity"), quantities.column("measured")))
    # The paper's stated values, exactly.
    assert measured["len"] == 6
    assert measured["vol"] == 9
    assert measured["high-density?"] is False
    # LS meets D = 16 at every cluster size.
    assert all(schedules.column("meets D=16?"))
    show(tables)
