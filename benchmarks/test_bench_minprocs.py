"""LEM1 bench: MINPROCS cluster sizes vs lower bounds and exhaustive optima."""

from repro.experiments.runner import run_experiment


def test_bench_minprocs(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("LEM1", samples=25, seed=0, quick=True)
    )
    ratios, exact = tables
    # LS never needs more than (2 - 1/m)x the makespan lower bound (Lemma 1).
    for row in ratios.rows:
        assert row[5] <= 2.0  # mean LS/LB makespan < 2 always
    # On small instances MINPROCS almost always matches the true optimum.
    total = exact.rows[0][0]
    optimal = exact.rows[0][1]
    assert optimal >= 0.7 * total
    show(tables)
