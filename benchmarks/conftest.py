"""Shared benchmark helpers.

Every benchmark regenerates one of the evaluation artifacts (see DESIGN.md's
experiment index) at reduced sample counts, times the regeneration with
pytest-benchmark, prints the resulting tables (run with ``-s`` to see them),
and asserts the qualitative *shape* the paper reports.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

import pytest

from repro.experiments.reporting import Table
from repro.obs.metrics import metrics

#: Timing/counter artifact written next to this file after every benchmark
#: session, so the perf trajectory of the hot paths (dbf evaluations, LS
#: invocations, simulator events, per-phase durations) is tracked PR-to-PR.
OBS_ARTIFACT = Path(__file__).parent / "BENCH_obs.json"


def pytest_sessionstart(session):
    """Collect observability counters/timers for the whole benchmark run."""
    metrics.reset()
    metrics.enable()


def pytest_sessionfinish(session, exitstatus):
    """Dump the registry snapshot as the session's perf artifact."""
    metrics.disable()
    metrics.to_json(OBS_ARTIFACT)


@pytest.fixture
def show():
    """Print experiment tables beneath the benchmark output."""

    def _show(tables: Iterable[Table]) -> None:
        for table in tables:
            print()
            print(table.render())

    return _show
