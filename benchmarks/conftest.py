"""Shared benchmark helpers.

Every benchmark regenerates one of the evaluation artifacts (see DESIGN.md's
experiment index) at reduced sample counts, times the regeneration with
pytest-benchmark, prints the resulting tables (run with ``-s`` to see them),
and asserts the qualitative *shape* the paper reports.
"""

from __future__ import annotations

from collections.abc import Iterable

import pytest

from repro.experiments.reporting import Table


@pytest.fixture
def show():
    """Print experiment tables beneath the benchmark output."""

    def _show(tables: Iterable[Table]) -> None:
        for table in tables:
            print()
            print(table.render())

    return _show
