"""EXP-L bench: reservation-hosted pool budget premium."""

from repro.experiments.runner import run_experiment


def test_bench_reservation(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-L", samples=6, seed=0, quick=True)
    )
    table = tables[0]
    fits = table.column("plans that fit")
    premiums = table.column("mean premium")
    # Invariant: every bucket is hostable (full budget == dedicated proc).
    assert all(f == 1.0 for f in fits)
    # The premium grows monotonically with the server period.
    assert all(a <= b + 1e-9 for a, b in zip(premiums, premiums[1:]))
    assert all(p >= 0 for p in premiums)
    show(tables)
