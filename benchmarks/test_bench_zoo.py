"""Workload-zoo bench: per-family generation throughput + EXP-W shape checks.

Two things are measured and tracked PR-to-PR in ``BENCH_workloads.json``:

* **generation throughput** -- DAGs per second for every registered family
  (including the DAX-imported fixture, whose "generation" is a lookup), the
  cost that bounds how many samples the sweeps can afford;
* **DAX round-trip throughput** -- ``dump_dax`` + ``load_dax`` cycles per
  second on a mid-sized Pegasus instance.

The EXP-W quick run rides along with structural assertions: every family
produces a row, sizes honour the sweep's common window, and the acceptance
columns are valid ratios.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.exp_zoo import zoo_families
from repro.experiments.runner import run_experiment
from repro.generation.dax import dump_dax, load_dax
from repro.generation.families import build_family_dag

ARTIFACT = Path(__file__).parent / "BENCH_workloads.json"

_ROUNDS = 60


def test_bench_zoo_generation_and_sweep(show):
    throughput: dict[str, float] = {}
    for family in zoo_families():
        started = time.perf_counter()
        for seed in range(_ROUNDS):
            dag = build_family_dag(family, 8, 20, rng=seed)
            assert len(dag) >= 1
        elapsed = time.perf_counter() - started
        throughput[family] = _ROUNDS / elapsed

    reference = build_family_dag("montage", 20, 20, rng=0)
    started = time.perf_counter()
    for _ in range(_ROUNDS):
        assert load_dax(dump_dax(reference)) == reference
    dax_round_trips_per_s = _ROUNDS / (time.perf_counter() - started)

    started = time.perf_counter()
    tables = run_experiment("EXP-W", seed=0, quick=True)
    exp_w_seconds = time.perf_counter() - started

    structure, admission = tables
    families = set(zoo_families())
    assert set(structure.column("family")) == families
    assert set(admission.column("family")) == families
    for label in ("accept U/m=0.4", "accept U/m=0.6"):
        assert all(0.0 <= ratio <= 1.0 for ratio in structure.column(label))
    # Every family's mean size sits in the sweep's common [8, 20] window
    # (the fixed-size DAX import included, by construction of the fixture).
    assert all(8 <= mean <= 20 for mean in structure.column("mean |V|"))
    assert all(mu >= 1 for mu in structure.column("mean mu"))

    ARTIFACT.write_text(
        json.dumps(
            {
                "families": len(families),
                "generation_dags_per_s": {
                    name: round(rate, 1)
                    for name, rate in sorted(throughput.items())
                },
                "dax_round_trips_per_s": round(dax_round_trips_per_s, 1),
                "exp_w_quick_seconds": round(exp_w_seconds, 3),
            },
            indent=2,
        )
        + "\n"
    )
    show(tables)
