"""EX2 bench: Example 2's unbounded capacity-augmentation witness."""

import pytest

from repro.experiments.runner import run_experiment


def test_bench_example2(benchmark, show):
    tables = benchmark(lambda: run_experiment("EX2", quick=True))
    table = tables[0]
    sizes = table.column("n")
    required = table.column("required speed (analytic)")
    measured = table.column("FEDCONS min speed (measured)")
    # Premises of Definition 2 hold at every n ...
    assert all(table.column("Def.2 premise (U_sum<=m, len<=D)?"))
    # ... yet the required speed grows linearly in n (no constant bound).
    for n, req, meas in zip(sizes, required, measured):
        assert req == pytest.approx(float(n))
        assert meas == pytest.approx(req, rel=1e-2)
    show(tables)
