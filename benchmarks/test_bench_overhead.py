"""EXP-K bench: preemption-overhead robustness."""

from repro.experiments.runner import run_experiment


def test_bench_overhead(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-K", samples=5, seed=0, quick=True)
    )
    table = tables[0]
    survival = table.column("miss-free systems")
    # Zero overhead is guaranteed miss-free; survival decays monotonically
    # as overhead grows.
    assert survival[0] == 1.0
    assert all(a >= b - 1e-9 for a, b in zip(survival, survival[1:]))
    show(tables)
