"""Online admission bench: incremental controller vs per-event re-analysis.

An admit-heavy trace (effectively infinite lifetimes, light tasks, a large
shared pool) grows the live population past 200 concurrently admitted tasks.
The same event sequence is costed two ways:

* **incremental** -- one :class:`repro.online.AdmissionController` replay;
  each admit is an O(buckets x test points) shard probe;
* **per-event batch** -- after every event, the full two-phase FEDCONS
  analysis of the currently-admitted set is re-run (what an online system
  without incremental state would have to do).  Decisions are identical by
  construction: the batch run is the controller's correctness oracle.

The tentpole's acceptance criterion -- incremental beats per-event batch
re-analysis by >= 5x once 200+ tasks are admitted -- is asserted here, and
the timings land in ``benchmarks/BENCH_online.json`` for PR-to-PR tracking.
The baseline is timed exactly (no stride sampling): at these sizes it costs
a few seconds total, which is the point.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.generation.tasksets import SystemConfig
from repro.generation.traces import TraceConfig, generate_trace
from repro.online.controller import AdmissionController
from repro.online.trace import replay

ARTIFACT = Path(__file__).parent / "BENCH_online.json"

_SEED = 0
_CONFIG = TraceConfig(
    events=280,
    processors=96,
    mean_lifetime=1e6,  # nothing departs inside the window: population grows
    heavy_fraction=0.05,
    utilization_low=0.02,
    utilization_high=0.28,
    shape=SystemConfig(
        min_vertices=4, max_vertices=10, deadline_ratio=(0.35, 1.0)
    ),
)


def test_bench_online_admission():
    trace = generate_trace(_CONFIG, _SEED)

    controller = AdmissionController(_CONFIG.processors)
    report = replay(controller, trace)
    incremental_seconds = report.elapsed_seconds
    assert controller.verify(exact=True)

    baseline = AdmissionController(_CONFIG.processors)
    batch_seconds = 0.0
    for event in trace:
        if event.op == "admit":
            baseline.admit(event.task)
        elif event.task_id in baseline.admitted_ids:
            baseline.depart(event.task_id)
        started = time.perf_counter()
        baseline.reanalyze()
        batch_seconds += time.perf_counter() - started

    speedup = batch_seconds / incremental_seconds if incremental_seconds else 0.0
    ARTIFACT.write_text(
        json.dumps(
            {
                "events": report.events,
                "processors": _CONFIG.processors,
                "seed": _SEED,
                "peak_admitted": report.peak_admitted,
                "accepted": report.accepted,
                "rejected": report.rejected,
                "incremental_seconds": incremental_seconds,
                "incremental_events_per_second": report.events_per_second,
                "batch_seconds": batch_seconds,
                "batch_events_per_second": (
                    report.events / batch_seconds if batch_seconds else 0.0
                ),
                "speedup": speedup,
                "baseline_sampling": "exact (every event)",
            },
            indent=2,
        )
        + "\n"
    )

    print(
        f"\npeak admitted {report.peak_admitted}: incremental "
        f"{incremental_seconds:.3f}s vs per-event batch {batch_seconds:.3f}s "
        f"({speedup:.0f}x)"
    )

    assert report.peak_admitted >= 200, (
        f"trace too small to exercise the criterion: peak admitted "
        f"{report.peak_admitted} < 200"
    )
    # The tentpole's acceptance criterion.
    assert speedup >= 5.0, (
        f"incremental admission only {speedup:.1f}x faster than per-event "
        f"re-analysis ({incremental_seconds:.3f}s vs {batch_seconds:.3f}s)"
    )
