"""Multi-core scaling sweep: jobs in {1, 2, 4, 8} over the EXP-A quick grid.

``test_bench_parallel.py`` answers "does the pool beat serial at one jobs
level"; this sweep measures how the speedup *scales* with worker count --
the repo's actual parallel-win artifact.  Every level re-runs the same
deterministic grid (derived per-sample seeds, grid-order reassembly), so
tables are byte-identical across levels and only the wall clock moves.

Results land in ``benchmarks/BENCH_multicore.json``.  The >= 1.8x gate at
``jobs=4`` applies only where this process can use >= 4 cores
(:func:`repro.parallel.available_cpus`); with fewer usable cores the sweep
is truncated to feasible levels and the artifact records an explicit
``skipped_reason`` for the gate instead of a fake ratio.  CI runs this in
the ``multicore`` job on a >= 4-vCPU runner; locally::

    PYTHONPATH=src python -m pytest -q -p no:cacheprovider \
        benchmarks/test_bench_multicore.py

See docs/PERFORMANCE.md ("Reading BENCH_multicore.json") for methodology.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.runner import run_experiment
from repro.parallel import available_cpus

ARTIFACT = Path(__file__).parent / "BENCH_multicore.json"

_SAMPLES = 24
_SEED = 0
_LEVELS = (1, 2, 4, 8)
_GATE_JOBS = 4
_GATE_SPEEDUP = 1.8


def _run(jobs: int):
    started = time.perf_counter()
    tables = run_experiment(
        "EXP-A", samples=_SAMPLES, seed=_SEED, quick=True, jobs=jobs
    )
    return tables, time.perf_counter() - started


def _csv_bytes(tables, directory: Path, tag: str) -> bytes:
    blobs = []
    for i, table in enumerate(tables):
        path = directory / f"{tag}_{i}.csv"
        table.to_csv(path)
        blobs.append(path.read_bytes())
    return b"".join(blobs)


def test_bench_multicore(tmp_path, show):
    cpus = available_cpus()
    # Oversubscribed levels (jobs > usable cores) measure contention, not
    # scaling; truncate the sweep to what the machine can actually run.
    levels = [j for j in _LEVELS if j == 1 or j <= cpus]

    serial_csv = None
    sweep = []
    for jobs in levels:
        tables, seconds = _run(jobs)
        csv = _csv_bytes(tables, tmp_path, f"jobs{jobs}")
        if serial_csv is None:
            serial_csv = csv
        # Determinism across every worker count, not just one.
        assert csv == serial_csv, f"jobs={jobs} tables differ from serial"
        sweep.append({"jobs": jobs, "seconds": seconds})

    serial_seconds = sweep[0]["seconds"]
    for row in sweep:
        row["speedup"] = (
            serial_seconds / row["seconds"] if row["seconds"] else None
        )

    skipped_reason = None
    if cpus < _GATE_JOBS:
        skipped_reason = (
            f"only {cpus} usable core(s): the jobs={_GATE_JOBS} "
            f">= {_GATE_SPEEDUP}x gate needs >= {_GATE_JOBS}"
        )

    ARTIFACT.write_text(
        json.dumps(
            {
                "experiment": "EXP-A",
                "samples": _SAMPLES,
                "seed": _SEED,
                "cpu_count": os.cpu_count(),
                "available_cpus": cpus,
                "levels": sweep,
                "gate": {
                    "jobs": _GATE_JOBS,
                    "min_speedup": _GATE_SPEEDUP,
                    "skipped_reason": skipped_reason,
                },
                "csv_identical": True,
            },
            indent=2,
        )
        + "\n"
    )

    if skipped_reason is None:
        gated = next(r for r in sweep if r["jobs"] == _GATE_JOBS)
        assert gated["speedup"] >= _GATE_SPEEDUP, (
            f"jobs={_GATE_JOBS} speedup {gated['speedup']:.2f}x < "
            f"{_GATE_SPEEDUP}x ({serial_seconds:.2f}s -> "
            f"{gated['seconds']:.2f}s)"
        )
    else:
        # Whatever levels did run must at least not blow up in overhead.
        worst = max(r["seconds"] for r in sweep)
        assert worst <= serial_seconds * 3.0
