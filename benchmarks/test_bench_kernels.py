"""Kernel bench: compiled LS / vectorized DBF* / QPA vs the reference paths.

Three micro-benchmarks, each timing the same workload with the compiled
kernels off (the plain-Python reference implementations) and on:

* **MINPROCS mu-search** -- the Fig. 3 search over a batch of wide,
  tight-deadline DAG tasks; the kernel side reuses one ``CompiledDAG`` per
  task and defers Slot/validation work to the fitting attempt.
* **PARTITION all-points probe** -- order-independent ``DBF*`` first-fit
  placement of a large low-density set, where every probe re-checks all
  affected shard test points (the online controller's admission path).
* **exact-EDF oracle** -- processor-demand feasibility of high-utilization
  sporadic sets with wide period spreads (large testing intervals): QPA
  (Zhang & Burns 2009) vs the full breakpoint scan.

Every workload's *results* are asserted identical between the two runs (the
bit-identity contract), timings land in ``benchmarks/BENCH_kernels.json``,
and the ISSUE's speedup floors -- >= 3x on MINPROCS, >= 5x on the exact
oracle -- are gated here.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import repro.core.shard as shard_module
import repro.online.controller as controller_module
from repro.core.cache import caches
from repro.core.dbf import demand_breakpoints, edf_exact_test, testing_interval_bound
from repro.core.kernels import use_kernels
from repro.core.minprocs import minprocs
from repro.core.partition import AdmissionTest, TaskOrder, partition_sporadic
from repro.core.shard import ShardState
from repro.model.dag import DAG
from repro.model.sporadic import SporadicTask
from repro.model.task import SporadicDAGTask
from repro.online.controller import AdmissionController

minprocs_module = __import__(
    "repro.core.minprocs", fromlist=["MU_SEARCH"]
)

ARTIFACT = Path(__file__).parent / "BENCH_kernels.json"

_SEED = 0
#: Best-of repeats per timed configuration.  Scheduling noise on busy CI
#: runners only ever *inflates* a run, so the minimum converges on the true
#: cost; five repeats keep the speedup ratios stable enough for the floors.
_REPEATS = 5

#: ISSUE 5 acceptance floors.
_MINPROCS_FLOOR = 3.0
_EXACT_FLOOR = 5.0
#: ISSUE 10 floors: bracketed mu-search vs the PR 5 linear scan (kernels on
#: both sides) on wide-mu-range tasks, and batched admit_many probes vs the
#: scalar first-fit scan on a warm reject-heavy batch.
_MU_SEARCH_FLOOR = 2.0
_BATCHED_FLOOR = 2.0


def _minprocs_workload(count: int = 8) -> list[SporadicDAGTask]:
    """Chain-plus-fringe DAGs whose mu-search walks dozens of cluster sizes.

    Each DAG is a long chain (the critical path) with a cloud of short
    fringe vertices hung between its source and sink, and a deadline only
    2% above the span.  Under the ``smallest_wcet`` priority order List
    Scheduling serves the fringe before the chain, so the makespan is
    roughly ``fringe_volume / mu + span`` and MINPROCS must try ~30 cluster
    sizes per task before one fits -- the long-walk regime the compiled
    kernel is built for.
    """
    rng = random.Random(_SEED)
    tasks = []
    for index in range(count):
        wcets = {}
        edges = []
        for v in range(20):
            wcets[v] = rng.uniform(4.0, 6.0)
            if v:
                edges.append((v - 1, v))
        for f in range(100):
            v = 20 + f
            wcets[v] = rng.uniform(0.5, 1.5)
            edges.append((0, v))
            edges.append((v, 19))
        dag = DAG(wcets, edges)
        deadline = dag.longest_chain_length * 1.02
        tasks.append(
            SporadicDAGTask(dag, deadline, deadline * 1.5, name=f"hi{index}")
        )
    return tasks


def _mu_search_workload(count: int = 6) -> list[SporadicDAGTask]:
    """Wide-mu-range variant of :func:`_minprocs_workload`: twice the fringe
    and a 1% deadline margin, so the linear Figure 3 scan walks ~100 cluster
    sizes per task while the bracketed search probes ~a dozen."""
    rng = random.Random(_SEED)
    tasks = []
    for index in range(count):
        wcets = {}
        edges = []
        for v in range(20):
            wcets[v] = rng.uniform(4.0, 6.0)
            if v:
                edges.append((v - 1, v))
        for f in range(200):
            v = 20 + f
            wcets[v] = rng.uniform(0.5, 1.5)
            edges.append((0, v))
            edges.append((v, 19))
        dag = DAG(wcets, edges)
        deadline = dag.longest_chain_length * 1.01
        tasks.append(
            SporadicDAGTask(dag, deadline, deadline * 1.5, name=f"wm{index}")
        )
    return tasks


def _partition_workload(count: int = 800) -> list[SporadicTask]:
    """Many light tasks on few processors, so each shard accumulates
    hundreds of DBF* test points and every first-fit probe sweeps them."""
    rng = random.Random(_SEED + 1)
    tasks = []
    for index in range(count):
        period = rng.uniform(20.0, 400.0)
        deadline = period * rng.uniform(0.3, 0.9)
        wcet = deadline * rng.uniform(0.002, 0.01)
        tasks.append(
            SporadicTask(wcet=wcet, deadline=deadline, period=period,
                         name=f"lo{index}")
        )
    return tasks


def _admit_workload(count: int = 500) -> list[SporadicDAGTask]:
    """Light single-vertex DAG tasks for the admission-controller batch."""
    rng = random.Random(_SEED + 3)
    tasks = []
    for index in range(count):
        period = rng.uniform(20.0, 400.0)
        deadline = period * rng.uniform(0.3, 0.9)
        wcet = deadline * rng.uniform(0.002, 0.01)
        tasks.append(
            SporadicDAGTask(
                DAG({0: wcet}, []), deadline, period, name=f"adm{index}"
            )
        )
    return tasks


def _warm_low_controller(
    shards: int = 8, per_shard: int = 60
) -> AdmissionController:
    """A controller whose shards are all near the utilization ceiling.

    Warm tasks share ``u = 0.99 / per_shard`` with ``period == deadline``
    (so demand never binds during the fill), which makes first-fit pack
    them strictly left to right: each shard accepts exactly *per_shard*
    tasks before its utilization headroom drops below ``u`` and the stream
    spills to the next shard.  Every shard ends with *per_shard* distinct
    deadline test points and utilization 0.99.
    """
    util = 0.99 / per_shard
    controller = AdmissionController(shards)
    for index in range(shards * per_shard):
        deadline = 10.0 + (index % per_shard) * 1.5
        wcet = util * deadline
        decision = controller.admit(
            SporadicDAGTask(
                DAG({0: wcet}, []), deadline, deadline, name=f"warm{index}"
            )
        )
        assert decision.accepted
    return controller


def _reject_candidates(count: int = 400) -> list[SporadicDAGTask]:
    """Candidates engineered to fail only the all-points demand scan.

    Against the warm shards of :func:`_warm_low_controller`: deadline 5.0
    sits below every stored test point (at-deadline demand 0, so the cheap
    screen passes), utilization 0.005 fits the 0.01 headroom, but wcet 3.0
    exceeds the ~1% slack the shard retains at its later test points -- the
    rejection only surfaces in the O(points) scan, on every shard.
    """
    return [
        SporadicDAGTask(
            DAG({0: 3.0}, []), 5.0, 600.0, name=f"rej{index}"
        )
        for index in range(count)
    ]


def _probe_shard(points: int) -> ShardState:
    """A shard holding *points* tasks, every deadline a distinct test point."""
    rng = random.Random(_SEED + 4)
    shard = ShardState()
    for rank in range(points):
        period = rng.uniform(50.0, 500.0)
        deadline = period * rng.uniform(0.4, 0.9)
        wcet = deadline * rng.uniform(0.0005, 0.002)
        shard.add(
            SporadicTask(wcet=wcet, deadline=deadline, period=period,
                         name=f"pt{rank}"),
            rank,
        )
    return shard


def _oracle_workload(sets: int = 8, tasks_per_set: int = 40):
    """High-utilization constrained-deadline sets with wide period spreads,
    i.e. long testing intervals with many breakpoints."""
    rng = random.Random(_SEED + 2)
    workload = []
    for _ in range(sets):
        shares = [rng.random() for _ in range(tasks_per_set)]
        scale = 0.88 / sum(shares)
        bucket = []
        for share in shares:
            period = 10.0 * (400.0 ** rng.random())  # log-uniform [10, 4000]
            utilization = share * scale
            deadline = period * rng.uniform(0.4, 0.95)
            bucket.append(
                SporadicTask(
                    wcet=utilization * period, deadline=deadline, period=period
                )
            )
        workload.append(bucket)
    return workload


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _time_both(run) -> tuple[float, float]:
    """(reference seconds, kernel seconds), each best-of-_REPEATS."""
    with use_kernels(False):
        old = _best_of(_REPEATS, run)
    with use_kernels(True):
        new = _best_of(_REPEATS, run)
    return old, new


def test_bench_kernels():
    cache_was_enabled = caches.enabled
    caches.disable()  # measure the kernels, not the memoization layer
    try:
        document = {"seed": _SEED, "repeats": _REPEATS, "floors": {
            "minprocs": _MINPROCS_FLOOR, "exact_oracle": _EXACT_FLOOR,
        }}

        # -- MINPROCS mu-search --------------------------------------------
        high_tasks = _minprocs_workload()

        def run_minprocs():
            return [
                minprocs(task, 512, order="smallest_wcet") for task in high_tasks
            ]

        # Pin the linear mu scan so this section keeps measuring kernel
        # LS-run speed over the same attempt stream as earlier PRs; the
        # bracketed-search win is measured separately below.
        minprocs_module.MU_SEARCH = "linear"
        try:
            with use_kernels(False):
                reference = run_minprocs()
            with use_kernels(True):
                kernel = run_minprocs()
            assert all(r is not None for r in reference)
            for a, b in zip(kernel, reference):
                assert (a.processors, a.attempts) == (b.processors, b.attempts)
                assert a.schedule.slots == b.schedule.slots
            old_s, new_s = _time_both(run_minprocs)
        finally:
            minprocs_module.MU_SEARCH = "bisect"
        attempts = sum(r.attempts for r in reference)
        minprocs_speedup = old_s / new_s
        document["minprocs"] = {
            "tasks": len(high_tasks),
            "ls_attempts": attempts,
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": minprocs_speedup,
        }

        # -- mu-search strategy: bracketed vs the PR 5 linear scan ---------
        wide_tasks = _mu_search_workload()

        def run_mu_search():
            return [
                minprocs(task, 1024, order="smallest_wcet")
                for task in wide_tasks
            ]

        with use_kernels(True):
            minprocs_module.MU_SEARCH = "linear"
            try:
                linear_results = run_mu_search()
                linear_s = _best_of(_REPEATS, run_mu_search)
            finally:
                minprocs_module.MU_SEARCH = "bisect"
            bisect_results = run_mu_search()
            bisect_s = _best_of(_REPEATS, run_mu_search)
        for a, b in zip(bisect_results, linear_results):
            assert (a.processors, a.attempts) == (b.processors, b.attempts)
            assert a.schedule.slots == b.schedule.slots
        mu_search_speedup = linear_s / bisect_s
        document["mu_search"] = {
            "tasks": len(wide_tasks),
            "linear_ls_runs": sum(r.ls_runs for r in linear_results),
            "bisect_ls_runs": sum(r.ls_runs for r in bisect_results),
            "old_seconds": linear_s,
            "new_seconds": bisect_s,
            "speedup": mu_search_speedup,
        }

        # -- PARTITION all-points probe ------------------------------------
        low_tasks = _partition_workload()

        def run_partition():
            return partition_sporadic(
                low_tasks, 4, order=TaskOrder.GIVEN,
                admission=AdmissionTest.DBF_APPROX_ALL_POINTS,
            )

        with use_kernels(False):
            ref_part = run_partition()
        with use_kernels(True):
            kern_part = run_partition()
        assert ref_part.success
        assert kern_part.success == ref_part.success
        assert kern_part.assignment == ref_part.assignment
        old_s, new_s = _time_both(run_partition)
        document["partition_probe"] = {
            "tasks": len(low_tasks),
            "processors": 4,
            "placed": sum(len(b) for b in ref_part.assignment),
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": old_s / new_s,
        }

        # -- batched admission probes (admit_many matrix vs scalar scan) ---
        # Correctness leg: an all-accept batch on fresh controllers, where
        # every accept dirties a column and the lazy re-validation path does
        # real work; decisions and final shard ledgers must match bit for
        # bit.
        admit_tasks = _admit_workload()

        def run_admit():
            controller = AdmissionController(8)
            return controller.admit_many(admit_tasks), controller

        with use_kernels(True):
            saved_min_points = controller_module.PROBE_MATRIX_MIN_POINTS
            controller_module.PROBE_MATRIX_MIN_POINTS = 0
            try:
                batched_decisions, batched_controller = run_admit()
            finally:
                controller_module.PROBE_MATRIX_MIN_POINTS = saved_min_points
            saved_min_shards = controller_module.PROBE_MATRIX_MIN_SHARDS
            controller_module.PROBE_MATRIX_MIN_SHARDS = 10**9
            try:
                scalar_decisions, scalar_controller = run_admit()
            finally:
                controller_module.PROBE_MATRIX_MIN_SHARDS = saved_min_shards
        assert [
            (d.accepted, d.processors) for d in batched_decisions
        ] == [(d.accepted, d.processors) for d in scalar_decisions]
        assert [
            s.state_vector() for s in batched_controller._shards
        ] == [s.state_vector() for s in scalar_controller._shards]

        # Timing leg: the case batching targets -- a warm controller whose
        # shards are all crowded, and a batch of candidates that survive the
        # O(log n) at-deadline/utilization screens and die in the O(points)
        # all-points scan.  The scalar path pays that scan per (task, shard)
        # pair; the matrix answers the whole batch in one broadcast.
        # Rejections never mutate the controller, so every repeat starts
        # from the identical warm state.
        warm_controller = _warm_low_controller()
        reject_batch = _reject_candidates()

        def run_probe_batch():
            return warm_controller.admit_many(reject_batch)

        with use_kernels(True):
            batched_reject = run_probe_batch()
            batched_s = _best_of(_REPEATS, run_probe_batch)
            saved_min_shards = controller_module.PROBE_MATRIX_MIN_SHARDS
            controller_module.PROBE_MATRIX_MIN_SHARDS = 10**9
            try:
                scalar_reject = run_probe_batch()
                scalar_s = _best_of(_REPEATS, run_probe_batch)
            finally:
                controller_module.PROBE_MATRIX_MIN_SHARDS = saved_min_shards
        assert all(not d.accepted for d in batched_reject)
        assert [
            (d.accepted, d.processors) for d in batched_reject
        ] == [(d.accepted, d.processors) for d in scalar_reject]
        batched_speedup = scalar_s / batched_s
        document["batched_probes"] = {
            "equivalence_tasks": len(admit_tasks),
            "timed_tasks": len(reject_batch),
            "processors": 8,
            "shard_points": len(warm_controller._shards[0]),
            "admitted": 0,
            "old_seconds": scalar_s,
            "new_seconds": batched_s,
            "speedup": batched_speedup,
        }

        # -- VECTOR_MIN_POINTS crossover micro-bench -----------------------
        probe_candidate = SporadicTask(
            wcet=0.01, deadline=1.0, period=1000.0, name="probe"
        )
        crossover = []
        with use_kernels(True):
            saved_min_points = shard_module.VECTOR_MIN_POINTS
            try:
                for size in (4, 8, 16, 32, 64, 128):
                    shard = _probe_shard(size)
                    timings = {}
                    for label, threshold in (
                        ("scalar", 10**9), ("vector", 0),
                    ):
                        shard_module.VECTOR_MIN_POINTS = threshold
                        started = time.perf_counter()
                        for _ in range(400):
                            shard.fits_all_points(probe_candidate)
                        timings[label] = (
                            (time.perf_counter() - started) / 400 * 1e6
                        )
                    crossover.append(
                        {
                            "points": size,
                            "scalar_us": timings["scalar"],
                            "vector_us": timings["vector"],
                        }
                    )
            finally:
                shard_module.VECTOR_MIN_POINTS = saved_min_points
        document["vector_min_points"] = {
            "default": shard_module.VECTOR_MIN_POINTS,
            "per_probe_us": crossover,
        }

        # -- exact-EDF oracle: QPA vs breakpoint scan ----------------------
        oracle_sets = _oracle_workload()
        breakpoints = sum(
            len(demand_breakpoints(bucket, testing_interval_bound(bucket)))
            for bucket in oracle_sets
        )

        def run_oracle():
            return [edf_exact_test(bucket) for bucket in oracle_sets]

        with use_kernels(False):
            ref_verdicts = run_oracle()
        with use_kernels(True):
            kern_verdicts = run_oracle()
        assert kern_verdicts == ref_verdicts
        old_s, new_s = _time_both(run_oracle)
        oracle_speedup = old_s / new_s
        document["exact_oracle"] = {
            "sets": len(oracle_sets),
            "tasks_per_set": len(oracle_sets[0]),
            "breakpoints": breakpoints,
            "accepted": sum(ref_verdicts),
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": oracle_speedup,
        }

        document["equivalence"] = {
            "minprocs": True, "mu_search": True, "partition": True,
            "batched_probes": True, "exact_oracle": True,
        }
        document["floors"]["mu_search"] = _MU_SEARCH_FLOOR
        document["floors"]["batched_probes"] = _BATCHED_FLOOR
        ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")

        assert minprocs_speedup >= _MINPROCS_FLOOR, (
            f"MINPROCS kernel speedup {minprocs_speedup:.2f}x below the "
            f"{_MINPROCS_FLOOR}x floor"
        )
        assert mu_search_speedup >= _MU_SEARCH_FLOOR, (
            f"bracketed mu-search speedup {mu_search_speedup:.2f}x below "
            f"the {_MU_SEARCH_FLOOR}x floor"
        )
        assert batched_speedup >= _BATCHED_FLOOR, (
            f"batched-probe speedup {batched_speedup:.2f}x below the "
            f"{_BATCHED_FLOOR}x floor"
        )
        assert oracle_speedup >= _EXACT_FLOOR, (
            f"exact-oracle QPA speedup {oracle_speedup:.2f}x below the "
            f"{_EXACT_FLOOR}x floor"
        )
    finally:
        caches.enabled = cache_was_enabled
