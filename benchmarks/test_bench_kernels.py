"""Kernel bench: compiled LS / vectorized DBF* / QPA vs the reference paths.

Three micro-benchmarks, each timing the same workload with the compiled
kernels off (the plain-Python reference implementations) and on:

* **MINPROCS mu-search** -- the Fig. 3 search over a batch of wide,
  tight-deadline DAG tasks; the kernel side reuses one ``CompiledDAG`` per
  task and defers Slot/validation work to the fitting attempt.
* **PARTITION all-points probe** -- order-independent ``DBF*`` first-fit
  placement of a large low-density set, where every probe re-checks all
  affected shard test points (the online controller's admission path).
* **exact-EDF oracle** -- processor-demand feasibility of high-utilization
  sporadic sets with wide period spreads (large testing intervals): QPA
  (Zhang & Burns 2009) vs the full breakpoint scan.

Every workload's *results* are asserted identical between the two runs (the
bit-identity contract), timings land in ``benchmarks/BENCH_kernels.json``,
and the ISSUE's speedup floors -- >= 3x on MINPROCS, >= 5x on the exact
oracle -- are gated here.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.core.cache import caches
from repro.core.dbf import demand_breakpoints, edf_exact_test, testing_interval_bound
from repro.core.kernels import use_kernels
from repro.core.minprocs import minprocs
from repro.core.partition import AdmissionTest, TaskOrder, partition_sporadic
from repro.model.dag import DAG
from repro.model.sporadic import SporadicTask
from repro.model.task import SporadicDAGTask

ARTIFACT = Path(__file__).parent / "BENCH_kernels.json"

_SEED = 0
_REPEATS = 3

#: ISSUE 5 acceptance floors.
_MINPROCS_FLOOR = 3.0
_EXACT_FLOOR = 5.0


def _minprocs_workload(count: int = 8) -> list[SporadicDAGTask]:
    """Chain-plus-fringe DAGs whose mu-search walks dozens of cluster sizes.

    Each DAG is a long chain (the critical path) with a cloud of short
    fringe vertices hung between its source and sink, and a deadline only
    2% above the span.  Under the ``smallest_wcet`` priority order List
    Scheduling serves the fringe before the chain, so the makespan is
    roughly ``fringe_volume / mu + span`` and MINPROCS must try ~30 cluster
    sizes per task before one fits -- the long-walk regime the compiled
    kernel is built for.
    """
    rng = random.Random(_SEED)
    tasks = []
    for index in range(count):
        wcets = {}
        edges = []
        for v in range(20):
            wcets[v] = rng.uniform(4.0, 6.0)
            if v:
                edges.append((v - 1, v))
        for f in range(100):
            v = 20 + f
            wcets[v] = rng.uniform(0.5, 1.5)
            edges.append((0, v))
            edges.append((v, 19))
        dag = DAG(wcets, edges)
        deadline = dag.longest_chain_length * 1.02
        tasks.append(
            SporadicDAGTask(dag, deadline, deadline * 1.5, name=f"hi{index}")
        )
    return tasks


def _partition_workload(count: int = 800) -> list[SporadicTask]:
    """Many light tasks on few processors, so each shard accumulates
    hundreds of DBF* test points and every first-fit probe sweeps them."""
    rng = random.Random(_SEED + 1)
    tasks = []
    for index in range(count):
        period = rng.uniform(20.0, 400.0)
        deadline = period * rng.uniform(0.3, 0.9)
        wcet = deadline * rng.uniform(0.002, 0.01)
        tasks.append(
            SporadicTask(wcet=wcet, deadline=deadline, period=period,
                         name=f"lo{index}")
        )
    return tasks


def _oracle_workload(sets: int = 8, tasks_per_set: int = 40):
    """High-utilization constrained-deadline sets with wide period spreads,
    i.e. long testing intervals with many breakpoints."""
    rng = random.Random(_SEED + 2)
    workload = []
    for _ in range(sets):
        shares = [rng.random() for _ in range(tasks_per_set)]
        scale = 0.88 / sum(shares)
        bucket = []
        for share in shares:
            period = 10.0 * (400.0 ** rng.random())  # log-uniform [10, 4000]
            utilization = share * scale
            deadline = period * rng.uniform(0.4, 0.95)
            bucket.append(
                SporadicTask(
                    wcet=utilization * period, deadline=deadline, period=period
                )
            )
        workload.append(bucket)
    return workload


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _time_both(run) -> tuple[float, float]:
    """(reference seconds, kernel seconds), each best-of-_REPEATS."""
    with use_kernels(False):
        old = _best_of(_REPEATS, run)
    with use_kernels(True):
        new = _best_of(_REPEATS, run)
    return old, new


def test_bench_kernels():
    cache_was_enabled = caches.enabled
    caches.disable()  # measure the kernels, not the memoization layer
    try:
        document = {"seed": _SEED, "repeats": _REPEATS, "floors": {
            "minprocs": _MINPROCS_FLOOR, "exact_oracle": _EXACT_FLOOR,
        }}

        # -- MINPROCS mu-search --------------------------------------------
        high_tasks = _minprocs_workload()

        def run_minprocs():
            return [
                minprocs(task, 512, order="smallest_wcet") for task in high_tasks
            ]

        with use_kernels(False):
            reference = run_minprocs()
        with use_kernels(True):
            kernel = run_minprocs()
        assert all(r is not None for r in reference)
        for a, b in zip(kernel, reference):
            assert (a.processors, a.attempts) == (b.processors, b.attempts)
            assert a.schedule.slots == b.schedule.slots
        old_s, new_s = _time_both(run_minprocs)
        attempts = sum(r.attempts for r in reference)
        minprocs_speedup = old_s / new_s
        document["minprocs"] = {
            "tasks": len(high_tasks),
            "ls_attempts": attempts,
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": minprocs_speedup,
        }

        # -- PARTITION all-points probe ------------------------------------
        low_tasks = _partition_workload()

        def run_partition():
            return partition_sporadic(
                low_tasks, 4, order=TaskOrder.GIVEN,
                admission=AdmissionTest.DBF_APPROX_ALL_POINTS,
            )

        with use_kernels(False):
            ref_part = run_partition()
        with use_kernels(True):
            kern_part = run_partition()
        assert ref_part.success
        assert kern_part.success == ref_part.success
        assert kern_part.assignment == ref_part.assignment
        old_s, new_s = _time_both(run_partition)
        document["partition_probe"] = {
            "tasks": len(low_tasks),
            "processors": 4,
            "placed": sum(len(b) for b in ref_part.assignment),
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": old_s / new_s,
        }

        # -- exact-EDF oracle: QPA vs breakpoint scan ----------------------
        oracle_sets = _oracle_workload()
        breakpoints = sum(
            len(demand_breakpoints(bucket, testing_interval_bound(bucket)))
            for bucket in oracle_sets
        )

        def run_oracle():
            return [edf_exact_test(bucket) for bucket in oracle_sets]

        with use_kernels(False):
            ref_verdicts = run_oracle()
        with use_kernels(True):
            kern_verdicts = run_oracle()
        assert kern_verdicts == ref_verdicts
        old_s, new_s = _time_both(run_oracle)
        oracle_speedup = old_s / new_s
        document["exact_oracle"] = {
            "sets": len(oracle_sets),
            "tasks_per_set": len(oracle_sets[0]),
            "breakpoints": breakpoints,
            "accepted": sum(ref_verdicts),
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": oracle_speedup,
        }

        document["equivalence"] = {
            "minprocs": True, "partition": True, "exact_oracle": True,
        }
        ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")

        assert minprocs_speedup >= _MINPROCS_FLOOR, (
            f"MINPROCS kernel speedup {minprocs_speedup:.2f}x below the "
            f"{_MINPROCS_FLOOR}x floor"
        )
        assert oracle_speedup >= _EXACT_FLOOR, (
            f"exact-oracle QPA speedup {oracle_speedup:.2f}x below the "
            f"{_EXACT_FLOOR}x floor"
        )
    finally:
        caches.enabled = cache_was_enabled
