"""EXP-M bench: workload characterization."""

from repro.experiments.runner import run_experiment


def test_bench_workload(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-M", samples=20, seed=0, quick=True)
    )
    table = tables[0]
    shares = table.column("high-density share")
    densities = table.column("mean density")
    # Tighter deadlines mean strictly denser tasks (monotone decline across
    # the ordered ranges).
    assert shares == sorted(shares, reverse=True)
    assert densities == sorted(densities, reverse=True)
    # Structural parallelism is deadline-independent: tight vs implicit
    # vol/len agree within sampling noise.
    parallelism = table.column("mean vol/len")
    assert abs(parallelism[0] - parallelism[-1]) < 0.3
    show(tables)
