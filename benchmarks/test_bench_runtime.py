"""EXP-G bench: raw FEDCONS analysis latency (the pytest-benchmark numbers
are the artifact here; the EXP-G tables add the scaling curves)."""

import numpy as np

from repro.core.fedcons import fedcons
from repro.experiments.runner import run_experiment
from repro.generation.tasksets import SystemConfig, generate_system


def test_bench_fedcons_analysis_latency(benchmark):
    cfg = SystemConfig(tasks=32, processors=16, normalized_utilization=0.5)
    systems = [
        generate_system(cfg, np.random.default_rng(i)) for i in range(10)
    ]
    state = {"i": 0}

    def analyse():
        system = systems[state["i"] % len(systems)]
        state["i"] += 1
        return fedcons(system, 16)

    benchmark(analyse)


def test_bench_runtime_scaling_tables(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-G", samples=3, seed=0, quick=True)
    )
    by_tasks, by_vertices = tables
    # Sub-second analysis across the whole sweep (complexity is polynomial).
    assert all(t < 1000.0 for t in by_tasks.column("mean analysis time (ms)"))
    assert all(
        t < 1000.0 for t in by_vertices.column("mean analysis time (ms)")
    )
    show(tables)
