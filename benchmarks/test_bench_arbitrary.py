"""EXT-H bench: arbitrary-deadline clamp pessimism (the paper's future work)."""

from repro.experiments.runner import run_experiment


def test_bench_arbitrary(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXT-H", samples=10, seed=0, quick=True)
    )
    table = tables[0]
    accepted = table.column("clamped FEDCONS accepts")
    passed = table.column("necessary-conditions pass")
    gaps = table.column("gap (open territory)")
    # Soundness of the clamp: it never accepts a system the necessary
    # conditions reject.
    assert all(a <= p + 1e-9 for a, p in zip(accepted, passed))
    assert all(0.0 <= g <= 1.0 for g in gaps)
    show(tables)
