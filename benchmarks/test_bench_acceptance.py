"""EXP-A bench: the paper's main schedulability experiment."""

from repro.experiments.runner import run_experiment


def test_bench_acceptance(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-A", samples=20, seed=0, quick=True)
    )
    for table in tables:
        ratios = table.column("FEDCONS")
        # Monotone non-increasing acceptance in load (up to sampling noise of
        # 20 samples: allow a single small inversion).
        inversions = sum(
            1 for a, b in zip(ratios, ratios[1:]) if b > a + 0.15
        )
        assert inversions == 0
        # Near-certain acceptance at the lightest load; (near-)zero at the
        # heaviest: the acceptance knee exists.
        assert ratios[0] >= 0.8
        assert ratios[-1] <= 0.2
    show(tables)
