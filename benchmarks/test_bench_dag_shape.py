"""EXP-D bench: acceptance across DAG-structure families."""

from repro.experiments.runner import run_experiment


def test_bench_dag_shape(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-D", samples=20, seed=0, quick=True)
    )
    table = tables[0]
    labels = table.column("DAG family")
    light = table.column("U/m=0.4")
    by_label = dict(zip(labels, light))
    # Chain-like (dense-edge) DAGs accept at least as often as the most
    # parallel ones at the same load (they stay low-density).
    assert by_label["Erdos-Renyi p=0.8 (chain-like)"] >= (
        by_label["Erdos-Renyi p=0.05 (parallel)"] - 0.1
    )
    show(tables)
