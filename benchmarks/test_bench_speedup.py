"""THM1 bench: empirical speedup factors against the 3 - 1/m bound."""

from repro.experiments.runner import run_experiment


def test_bench_speedup(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("THM1", samples=8, seed=1, quick=True)
    )
    table = tables[0]
    for row in table.rows:
        mean, bound = row[2], row[5]
        # The paper's closing claim: typical performance is far better than
        # the conservative bound -- mean measured ratio well below 3 - 1/m.
        assert mean < bound
    show(tables)
