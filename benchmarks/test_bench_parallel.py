"""Parallel-engine bench: serial-vs-parallel speedup and cache hit rates.

Three timed configurations of the EXP-A quick acceptance sweep:

* **serial-cold** -- ``jobs=1``, caches disabled: the historical baseline;
* **parallel** -- ``jobs=min(4, cpu_count)``, caches disabled: pure
  process-pool speedup, bit-identical tables required;
* **serial-warm** -- ``jobs=1`` under :func:`repro.core.cache.caching`, run
  twice: the second pass must serve DBF* demand values from the cache.

The numbers land in ``benchmarks/BENCH_parallel.json`` so the speedup and
hit-rate trajectory is comparable across PRs.  The >= 2x speedup criterion is
asserted only on machines where this *process* can use >= 4 cores
(:func:`repro.parallel.available_cpus` -- affinity-aware, unlike
``os.cpu_count``); below 2 usable cores a "speedup" is noise, so none is
recorded: the artifact carries an explicit ``skipped_reason`` instead of a
meaningless ratio.  The jobs={1,2,4,8} scaling sweep lives in
``test_bench_multicore.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cache import caches, caching
from repro.experiments.runner import run_experiment
from repro.parallel import available_cpus

ARTIFACT = Path(__file__).parent / "BENCH_parallel.json"

_SAMPLES = 20
_SEED = 0


def _run(jobs: int):
    started = time.perf_counter()
    tables = run_experiment(
        "EXP-A", samples=_SAMPLES, seed=_SEED, quick=True, jobs=jobs
    )
    return tables, time.perf_counter() - started


def _csv_bytes(tables, directory: Path, tag: str) -> bytes:
    blobs = []
    for i, table in enumerate(tables):
        path = directory / f"{tag}_{i}.csv"
        table.to_csv(path)
        blobs.append(path.read_bytes())
    return b"".join(blobs)


def test_bench_parallel(tmp_path, show):
    cpus = available_cpus()
    jobs = min(4, cpus)

    serial_tables, serial_seconds = _run(jobs=1)
    parallel_tables, parallel_seconds = _run(jobs=jobs)

    # Determinism: parallel output must be byte-identical to serial output.
    serial_csv = _csv_bytes(serial_tables, tmp_path, "serial")
    parallel_csv = _csv_bytes(parallel_tables, tmp_path, "parallel")
    assert parallel_csv == serial_csv

    # Cache effectiveness: a warm second pass over the same grid serves DBF*
    # demand values (and MINPROCS sizings) from the cache.
    with caching() as active:
        warm_tables, _ = _run(jobs=1)
        active.reset_counters()
        rewarm_tables, warm_seconds = _run(jobs=1)
        cache_stats = active.stats()
    assert _csv_bytes(warm_tables, tmp_path, "warm") == serial_csv
    assert _csv_bytes(rewarm_tables, tmp_path, "rewarm") == serial_csv
    # Since the ShardState-ledger refactor the partition probes no longer go
    # through the dbf_star value cache, so warm-pass effectiveness shows up
    # as MINPROCS sizings answered without re-running List Scheduling.
    assert cache_stats["minprocs"]["hits"] > 0
    assert cache_stats["minprocs"]["hit_rate"] > 0.0

    # A speedup ratio measured where the process cannot run two workers at
    # once is pool overhead, not a measurement; record why it is absent
    # rather than a ~1.0 number that looks like a (failed) result.
    skipped_reason = None
    if cpus < 2:
        skipped_reason = (
            f"only {cpus} usable core(s): parallel speedup is not measurable"
        )
    speedup = (
        serial_seconds / parallel_seconds
        if parallel_seconds and skipped_reason is None
        else None
    )
    ARTIFACT.write_text(
        json.dumps(
            {
                "experiment": "EXP-A",
                "samples": _SAMPLES,
                "seed": _SEED,
                "cpu_count": os.cpu_count(),
                "available_cpus": cpus,
                "jobs": jobs,
                "serial_seconds": serial_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup": speedup,
                "skipped_reason": skipped_reason,
                "warm_cached_serial_seconds": warm_seconds,
                "csv_identical": True,
                "cache": cache_stats,
            },
            indent=2,
        )
        + "\n"
    )

    if cpus >= 4:
        # The tentpole's acceptance criterion, on hardware that can show it.
        assert speedup is not None and speedup >= 2.0, (
            f"jobs={jobs} speedup {speedup}x < 2x "
            f"({serial_seconds:.2f}s -> {parallel_seconds:.2f}s)"
        )
    else:
        # Too few usable cores for a speedup claim: parallel dispatch may
        # not win, but its overhead must stay bounded.
        assert parallel_seconds <= serial_seconds * 3.0

    show(serial_tables)
