"""EXP-C bench: acceptance vs deadline tightness."""

from repro.experiments.runner import run_experiment


def test_bench_deadline_ratio(benchmark, show):
    tables = benchmark(
        lambda: run_experiment("EXP-C", samples=20, seed=0, quick=True)
    )
    table = tables[0]
    # At a moderate load, tightening deadlines can only hurt: the tight end
    # accepts no more than the implicit end.
    mid_load = table.column("U/m=0.5")
    assert mid_load[0] <= mid_load[-1] + 0.15
    show(tables)
