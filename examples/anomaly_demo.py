#!/usr/bin/env python
"""Graham's timing anomaly, and why FEDCONS replays templates.

The paper (footnote 2) stores each high-density task's List-Scheduling
schedule as a lookup table because re-running LS online is *unsafe*: jobs
finishing early can make a naively re-scheduled DAG take **longer**.  This
example shows the classic anomaly instance, then demonstrates that the
template-replay dispatcher is immune: with the same early completions, every
job still starts at its template time and the makespan can only shrink.

Run:  python examples/anomaly_demo.py
"""

import numpy as np

from repro import SporadicDAGTask, TaskSystem, fedcons
from repro.core import graham_anomaly_instance, list_schedule
from repro.sim import (
    ExecutionTimeModel,
    ReleasePattern,
    simulate_deployment,
)


def main() -> None:
    dag, dag_reduced, priority, m = graham_anomaly_instance()

    s_full = list_schedule(dag, m, order=priority)
    s_reduced = list_schedule(dag_reduced, m, order=priority)
    print(f"LS on {m} processors, full WCETs     : makespan {s_full.makespan:g}")
    print(s_full.as_gantt_text(width=48))
    print()
    print(
        f"LS re-run with every job 1 unit FASTER: makespan {s_reduced.makespan:g}"
        "  <-- LONGER!"
    )
    print(s_reduced.as_gantt_text(width=48))
    print()
    assert s_reduced.makespan > s_full.makespan, "the anomaly"

    # Wrap the anomaly DAG in a task whose deadline the full-WCET template
    # meets, but which the anomalous re-run would miss.
    deadline = s_full.makespan  # 12: tight against the template
    task = SporadicDAGTask(dag, deadline=deadline, period=20.0, name="anomalous")
    deployment = fedcons(TaskSystem([task]), m)
    assert deployment.success
    print(
        f"FEDCONS admits the task with D = {deadline:g} using the stored "
        "template."
    )

    # Execute with the *reduced* execution times (each job 1 unit early).
    # A re-running dispatcher would take 13 > 12 and miss; template replay
    # keeps every start time and finishes early everywhere.
    report = simulate_deployment(
        deployment,
        horizon=200.0,
        rng=np.random.default_rng(0),
        pattern=ReleasePattern.PERIODIC,
        exec_model=ExecutionTimeModel.UNIFORM_FRACTION,
        fraction_range=(0.6, 0.9),  # strictly early completions
    )
    print(report.describe())
    assert report.ok, "template replay is anomaly-proof"
    print("\nno deadline miss despite early completions: anomaly neutralised.")


if __name__ == "__main__":
    main()
