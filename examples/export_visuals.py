#!/usr/bin/env python
"""Export visual artifacts: DOT task graphs, SVG templates, SVG traces.

Produces, in ``./visuals/``:

* ``figure1.dot``        -- the paper's Figure 1 DAG with its critical path
                            highlighted (render with ``dot -Tpng``);
* ``template.svg``       -- the LS template MINPROCS stores for a
                            high-density task, deadline marker included;
* ``trace.svg``          -- a simulated execution window of the full
                            deployment, colour-keyed by task;
* ``roundtrip check``    -- the DOT export is re-imported and compared.

Run:  python examples/export_visuals.py
"""

from pathlib import Path

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.model import parse_dot
from repro.paper import figure1_dag, figure1_task
from repro.sim import ReleasePattern, simulate_deployment
from repro.viz import dag_to_dot, schedule_to_svg, task_to_dot, trace_to_svg, write_svg


def main() -> None:
    out = Path("visuals")
    out.mkdir(exist_ok=True)

    # --- DOT export of the paper's example task -------------------------
    dot = task_to_dot(figure1_task(), name="figure1")
    (out / "figure1.dot").write_text(dot)
    print(f"wrote {out / 'figure1.dot'}")
    # Round-trip sanity: the export parses back to the identical DAG.
    assert parse_dot(dot) == figure1_dag()
    print("  (round-trip through the DOT importer verified)")

    # --- A deployment with a high-density task --------------------------
    fusion = SporadicDAGTask(
        DAG.fork_join([4, 4, 4, 4], source_wcet=1, sink_wcet=1),
        deadline=8.0,
        period=10.0,
        name="fusion",
    )
    logger = SporadicDAGTask(
        DAG.chain([1, 1]), deadline=6, period=12, name="logger"
    )
    health = SporadicDAGTask(
        DAG.single_vertex(2), deadline=5, period=8, name="health"
    )
    deployment = fedcons(TaskSystem([fusion, logger, health]), 5)
    assert deployment.success

    # --- SVG of the stored template --------------------------------------
    template = deployment.allocation_for(fusion).schedule
    svg = schedule_to_svg(
        template,
        title="fusion: MINPROCS template on its dedicated cluster",
        deadline=fusion.deadline,
    )
    write_svg(svg, out / "template.svg")
    print(f"wrote {out / 'template.svg'}")

    # --- SVG of a simulated window ---------------------------------------
    report = simulate_deployment(
        deployment,
        horizon=120.0,
        rng=7,
        pattern=ReleasePattern.UNIFORM,
        record_trace=True,
    )
    assert report.ok
    svg = trace_to_svg(
        report,
        processors=5,
        title="federated deployment, first 60 time units",
        window=(0.0, 60.0),
    )
    write_svg(svg, out / "trace.svg")
    print(f"wrote {out / 'trace.svg'}")


if __name__ == "__main__":
    main()
