#!/usr/bin/env python
"""Avionics-style workload: mixed-rate control loops with tight deadlines.

Flight-control software is the canonical constrained-deadline workload: a
fast inner loop must *finish* well before its period elapses (jitter
control), while slower guidance/navigation pipelines expose real parallelism.
This example builds such a system by hand, sizes the platform with FEDCONS,
compares against the fully-partitioned baseline (which cannot host the
parallel inner loop at all), and prints the processor budget breakdown.

Run:  python examples/avionics_control.py
"""

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.baselines import partitioned_sequential
from repro.sim import ReleasePattern, simulate_deployment


def build_system() -> TaskSystem:
    # Inner stabilisation loop, 100 Hz equivalent (period 10 ms): read 3 IMUs
    # in parallel, fuse, compute the control law along 3 independent axes,
    # mix the surfaces.  D = 4 ms << T: the output must be fresh.
    imu = {f"imu{i}": 0.6 for i in range(3)}
    axes = {f"axis{i}": 0.8 for i in range(3)}
    inner_wcets = {**imu, "fuse": 0.7, **axes, "mix": 0.5}
    inner_edges = (
        [(f"imu{i}", "fuse") for i in range(3)]
        + [("fuse", f"axis{i}") for i in range(3)]
        + [(f"axis{i}", "mix") for i in range(3)]
    )
    inner = SporadicDAGTask(
        DAG(inner_wcets, inner_edges), deadline=4.0, period=10.0, name="stab_loop"
    )
    assert inner.is_high_density, "4.0 deadline vs 6.6 volume: needs federation"

    # Guidance pipeline, 20 Hz (period 50 ms), moderately parallel.
    guidance = SporadicDAGTask(
        DAG.fork_join([5.0, 5.0, 4.0], source_wcet=1.0, sink_wcet=2.0),
        deadline=30.0,
        period=50.0,
        name="guidance",
    )

    # Sequential housekeeping at various rates.
    telemetry = SporadicDAGTask(
        DAG.chain([1.5, 1.0]), deadline=20.0, period=40.0, name="telemetry"
    )
    gear = SporadicDAGTask(
        DAG.single_vertex(2.0), deadline=80.0, period=200.0, name="gear_monitor"
    )
    fuel = SporadicDAGTask(
        DAG.chain([0.5, 0.5, 0.5]), deadline=60.0, period=100.0, name="fuel_est"
    )
    return TaskSystem([inner, guidance, telemetry, gear, fuel])


def main() -> None:
    system = build_system()
    print(system.describe())
    print()

    # The fully-partitioned baseline is structurally stuck: the inner loop
    # has density > 1, so no single processor can ever host it.
    baseline = partitioned_sequential(system, processors=8)
    print(
        "fully-partitioned on 8 processors:",
        "ACCEPTED" if baseline.success else
        f"REJECTED (cannot sequentialise {baseline.failed_task.name})",
    )

    # FEDCONS: find the smallest platform that works.
    for m in range(1, 9):
        deployment = fedcons(system, m)
        if deployment.success:
            print(f"FEDCONS: smallest platform = {m} processors")
            print(deployment.describe())
            break
    else:
        raise SystemExit("unexpectedly unschedulable on 8 processors")
    print()

    # Long-run validation with sporadic (jittered) releases.
    report = simulate_deployment(
        deployment, horizon=10_000.0, rng=7, pattern=ReleasePattern.UNIFORM
    )
    print(report.describe())
    assert report.ok
    stab = report.stats["stab_loop"]
    print(
        f"\nstabilisation loop: worst observed latency "
        f"{stab.max_response:.2f} ms against a 4 ms deadline "
        f"({100 * stab.max_response / 4.0:.0f}% consumed)"
    )


if __name__ == "__main__":
    main()
