#!/usr/bin/env python
"""Autonomous-driving perception: sizing a multicore for parallel pipelines.

The motivating workload of the parallel real-time literature: camera/lidar
perception DAGs whose volume far exceeds what one core can deliver within
the frame deadline.  This example:

1. builds two perception pipelines (camera @ 30 fps, lidar @ 10 Hz) plus
   planning and housekeeping tasks;
2. asks, for each platform size m, which scheduling approaches admit the
   system -- reproducing in miniature the paper's comparison; and
3. shows how FEDCONS's processor budget splits between dedicated clusters
   and the shared pool as the deadline tightens (a what-if sweep a system
   architect would actually run).

Run:  python examples/perception_pipeline.py
"""

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.baselines import gedf_any_test, partitioned_sequential


def camera_dag() -> DAG:
    """Capture -> 4-way tiled detection -> NMS -> tracking, plus a lane
    branch joining at fusion."""
    wcets = {
        "capture": 2.0,
        "tile0": 7.0,
        "tile1": 7.0,
        "tile2": 7.0,
        "tile3": 7.0,
        "nms": 2.0,
        "lanes": 6.0,
        "track": 3.0,
        "fusion": 1.5,
    }
    edges = [
        ("capture", "tile0"),
        ("capture", "tile1"),
        ("capture", "tile2"),
        ("capture", "tile3"),
        ("tile0", "nms"),
        ("tile1", "nms"),
        ("tile2", "nms"),
        ("tile3", "nms"),
        ("capture", "lanes"),
        ("nms", "track"),
        ("track", "fusion"),
        ("lanes", "fusion"),
    ]
    return DAG(wcets, edges)


def lidar_dag() -> DAG:
    """Sweep assembly -> 3 parallel segmentations -> clustering."""
    return DAG(
        wcets={
            "assemble": 5.0,
            "seg0": 12.0,
            "seg1": 12.0,
            "seg2": 12.0,
            "cluster": 6.0,
        },
        edges=[
            ("assemble", "seg0"),
            ("assemble", "seg1"),
            ("assemble", "seg2"),
            ("seg0", "cluster"),
            ("seg1", "cluster"),
            ("seg2", "cluster"),
        ],
    )


def build_system(camera_deadline: float = 25.0) -> TaskSystem:
    camera = SporadicDAGTask(
        camera_dag(), deadline=camera_deadline, period=33.3, name="camera"
    )
    lidar = SporadicDAGTask(lidar_dag(), deadline=80.0, period=100.0, name="lidar")
    planner = SporadicDAGTask(
        DAG.chain([4.0, 3.0]), deadline=40.0, period=50.0, name="planner"
    )
    can_bus = SporadicDAGTask(
        DAG.single_vertex(0.5), deadline=5.0, period=10.0, name="can_bus"
    )
    logger = SporadicDAGTask(
        DAG.chain([1.0, 1.0]), deadline=90.0, period=100.0, name="logger"
    )
    return TaskSystem([camera, lidar, planner, can_bus, logger])


def main() -> None:
    system = build_system()
    print(system.describe())
    print()

    print(f"{'m':>3} | {'FEDCONS':^8} | {'global EDF':^10} | {'partitioned':^11}")
    print("-" * 42)
    for m in range(1, 9):
        fed = fedcons(system, m).success
        gedf = gedf_any_test(system, m)
        part = partitioned_sequential(system, m).success
        row = lambda ok: "yes" if ok else "-"
        print(f"{m:>3} | {row(fed):^8} | {row(gedf):^10} | {row(part):^11}")
    print()

    # Architect's what-if: how does the camera deadline drive the budget?
    print("camera deadline sweep on m = 6 (dedicated + shared processors):")
    for deadline in (33.3, 30.0, 25.0, 20.0, 16.0, 13.0):
        sys_d = build_system(camera_deadline=deadline)
        deployment = fedcons(sys_d, 6)
        if deployment.success:
            print(
                f"  D_camera = {deadline:>5.1f} ms: ACCEPTED  "
                f"(dedicated {deployment.dedicated_processor_count}, "
                f"shared {deployment.shared_processor_count})"
            )
        else:
            print(
                f"  D_camera = {deadline:>5.1f} ms: REJECTED in "
                f"{deployment.reason.value}"
            )


if __name__ == "__main__":
    main()
