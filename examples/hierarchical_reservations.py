#!/usr/bin/env python
"""Hierarchical deployment: hosting the shared pool in periodic reservations.

A DAG workload certified by FEDCONS must often share its platform with other
(e.g. legacy) software.  The component-based answer wraps each shared-pool
processor's task set in a periodic reservation ``(Pi, Theta)``: the host
kernel guarantees ``Theta`` units of supply per ``Pi``, and inside that
supply the bucket runs EDF exactly as FEDCONS planned.  This example:

1. deploys a workload with FEDCONS;
2. sizes minimal-budget reservations for the pool at several server periods,
   showing the budget premium the supply uncertainty costs;
3. reports per-task worst-case response bounds for the dedicated clusters
   (template makespans) and the pool (Spuri's exact EDF analysis on the
   owned-processor baseline);
4. shows the leftover host capacity available to non-realtime software.

Run:  python examples/hierarchical_reservations.py
"""

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.analysis import deployment_response_bounds
from repro.extensions import plan_reservations


def build_system() -> TaskSystem:
    radar = SporadicDAGTask(
        DAG.fork_join([3.0, 3.0, 3.0], source_wcet=1.0, sink_wcet=1.0),
        deadline=7.0,
        period=12.0,
        name="radar_fusion",
    )
    tracker = SporadicDAGTask(
        DAG.chain([1.0, 1.5]), deadline=8.0, period=15.0, name="tracker"
    )
    comms = SporadicDAGTask(
        DAG.single_vertex(2.0), deadline=10.0, period=20.0, name="comms"
    )
    logger = SporadicDAGTask(
        DAG.chain([0.5, 0.5]), deadline=25.0, period=40.0, name="logger"
    )
    return TaskSystem([radar, tracker, comms, logger])


def main() -> None:
    system = build_system()
    deployment = fedcons(system, processors=4)
    assert deployment.success
    print(deployment.describe())
    print()

    print("worst-case response bounds (owned processors):")
    bounds = deployment_response_bounds(deployment)
    for task in system:
        print(
            f"  {task.name:<14} WCRT {bounds[task.name]:6.2f}  "
            f"(deadline {task.deadline:g})"
        )
    print()

    print("reservation sizing for the shared pool:")
    for fraction in (0.1, 0.25, 0.5):
        plan = plan_reservations(deployment, period_fraction=fraction)
        assert plan.success
        print(f"- server period = {fraction:.0%} of tightest pool deadline:")
        for line in plan.describe().splitlines():
            print(f"    {line}")
        leftover = len(plan.reservations) - plan.total_rate
        print(
            f"    host capacity left on pool processors for other software: "
            f"{leftover:.3f} processors\n"
        )


if __name__ == "__main__":
    main()
