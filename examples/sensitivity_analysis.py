#!/usr/bin/env python
"""Design-space exploration: platform sizing, slack, and bottlenecks.

After FEDCONS admits a system, the next engineering questions are "how much
margin do I have?" and "which task do I optimise first?".  This example runs
the sensitivity toolkit on a packaging-line motion-control workload:

1. find the smallest admitting platform;
2. measure the whole-system WCET growth budget;
3. rank tasks by individual WCET slack and identify the bottleneck;
4. verify the reported slack is actually consumable (re-admission check).

Run:  python examples/sensitivity_analysis.py
"""

import math

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.analysis import (
    bottleneck_task,
    minimum_platform,
    system_scaling_slack,
    task_scaling_slack,
)


def build_system() -> TaskSystem:
    # Interpolation pipeline: parse -> 3 parallel axis interpolators -> sync.
    interp = SporadicDAGTask(
        DAG.fork_join([1.2, 1.2, 1.2], source_wcet=0.4, sink_wcet=0.4),
        deadline=2.5,
        period=4.0,
        name="interpolator",
    )
    # Sequential helpers at mixed rates.
    estop = SporadicDAGTask(
        DAG.single_vertex(0.3), deadline=1.0, period=2.0, name="estop_scan"
    )
    conveyor = SporadicDAGTask(
        DAG.chain([0.8, 0.6]), deadline=6.0, period=10.0, name="conveyor_pid"
    )
    vision = SporadicDAGTask(
        DAG.fork_join([2.0, 2.0], 0.5, 0.5), deadline=18.0, period=25.0,
        name="vision_check",
    )
    hmi = SporadicDAGTask(
        DAG.single_vertex(1.0), deadline=40.0, period=50.0, name="hmi_update"
    )
    return TaskSystem([interp, estop, conveyor, vision, hmi])


def main() -> None:
    system = build_system()
    print(system.describe())
    print()

    # 1. Platform sizing.
    smallest = minimum_platform(system)
    print(f"smallest admitting platform: {smallest} processors")
    m = smallest + 1  # deploy with one processor of headroom
    deployment = fedcons(system, m)
    assert deployment.success
    print(f"deploying on m = {m} (one spare processor of headroom)")
    print()

    # 2. Whole-system budget.
    growth = system_scaling_slack(system, m)
    print(
        f"every WCET in the system may grow by {100 * (growth - 1):.1f}% "
        "simultaneously before admission fails"
    )
    print()

    # 3. Per-task slack ranking.
    report = bottleneck_task(system, m, tolerance=0.01)
    print(report.describe())
    print()

    # 4. The slack is real: consume 95% of the bottleneck's budget and
    # confirm re-admission.
    index = next(
        i for i, t in enumerate(system) if t.name == report.bottleneck
    )
    slack = report.slacks[report.bottleneck]
    if math.isfinite(slack):
        from repro.analysis.sensitivity import _with_task_scaled

        grown = _with_task_scaled(system, index, 1 + 0.95 * (slack - 1))
        assert fedcons(grown, m).success
        print(
            f"verified: growing {report.bottleneck!r} by "
            f"{95 * (slack - 1):.1f}% keeps the system schedulable"
        )


if __name__ == "__main__":
    main()
