#!/usr/bin/env python
"""Quickstart: model a small DAG task system, schedule it with FEDCONS,
inspect the deployment, and validate it in simulation.

Run:  python examples/quickstart.py
"""

from repro import DAG, SporadicDAGTask, TaskSystem, fedcons
from repro.sim import ExecutionTimeModel, ReleasePattern, simulate_deployment


def main() -> None:
    # --- 1. Model -------------------------------------------------------
    # A parallel "sensor fusion" task: 1 dispatch job, 4 parallel filters,
    # 1 merge job.  Volume 18, critical path 6 -- heavily parallel.
    fusion = SporadicDAGTask(
        dag=DAG.fork_join([4, 4, 4, 4], source_wcet=1, sink_wcet=1),
        deadline=8.0,  # tighter than its 18 units of work: high-density
        period=10.0,
        name="fusion",
    )
    # Two lightweight sequential tasks sharing whatever is left.
    logger = SporadicDAGTask(DAG.chain([1, 1]), deadline=6, period=12, name="logger")
    health = SporadicDAGTask(DAG.single_vertex(2), deadline=5, period=8, name="health")
    system = TaskSystem([fusion, logger, health])
    print(system.describe())
    print()

    # --- 2. Schedule ------------------------------------------------------
    deployment = fedcons(system, processors=5)
    print(deployment.describe())
    print()
    assert deployment.success, "this system fits on 5 processors"

    # The high-density task got a dedicated cluster with a stored template:
    template = deployment.allocation_for(fusion).schedule
    print(f"fusion template (makespan {template.makespan:g} <= D {fusion.deadline:g}):")
    print(template.as_gantt_text(width=48))
    print()

    # --- 3. Validate in simulation ---------------------------------------
    report = simulate_deployment(
        deployment,
        horizon=500.0,
        rng=42,
        pattern=ReleasePattern.UNIFORM,  # sporadic releases with jitter
        exec_model=ExecutionTimeModel.UNIFORM_FRACTION,  # early completions
    )
    print(report.describe())
    assert report.ok, "an accepted deployment never misses a deadline"


if __name__ == "__main__":
    main()
